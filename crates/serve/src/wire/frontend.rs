//! The connection-serving front end: owns a
//! [`StreamingServer`] and speaks the wire protocol
//! over any [`Transport`], and maps per-connection backpressure onto the
//! admission queue.
//!
//! ## Pump cycle
//!
//! [`Frontend::pump`] is one deterministic service round, sequential over
//! connections in [`ConnId`] order:
//!
//! 1. **Ingest** — drain every connection's transport into its
//!    [`FrameBuf`], decode, and handle each frame, charging
//!    [`FRAME_DECODE_OPS`] per decode attempt (well-formed or not) on the
//!    pumping ledger. `Hello` binds the connection to a tenant (checked
//!    against the registered credential when tenancy is active);
//!    `Request` is admitted through
//!    [`StreamingServer::submit_as`](crate::StreamingServer::submit_as);
//!    inbound `Answer`/`Error` frames are protocol violations
//!    ([`WireFault::UnexpectedFrame`]).
//! 2. **Dispatch** — one [`flush`](crate::StreamingServer::flush) if the
//!    queue is non-empty.
//! 3. **Deliver** — every deliverable result is encoded
//!    ([`FRAME_ENCODE_OPS`] each) and sent to the connection that
//!    submitted it.
//!
//! ## Windows as backpressure
//!
//! Each connection may have at most `window` requests in flight
//! (submitted, answer not yet sent). A request over the window is
//! answered with a typed [`ServeError::Overloaded`] error frame —
//! `queue_len` reporting the connection's in-flight count and
//! `max_queue` its window — and **never** a dropped byte: the connection
//! stays synchronized and other connections keep submitting. The window
//! defaults to the admission policy's `max_queue`, so a single
//! connection cannot force the server-side
//! [`Overflow::Shed`](crate::Overflow::Shed) path on its own.
//!
//! ## Faults
//!
//! Every failure is answered in-band: malformed frames, bad credentials,
//! tenant rejections, and over-window requests each produce an error
//! frame carrying the same [`ServeError`] the in-process API returns. A
//! connection is only ever *closed* by its transport
//! ([`TransportError`](super::TransportError) on send or receive); close
//! is counted, buffered frames already
//! received are still served, and undeliverable answers are dropped
//! after accounting.

use wec_asym::{FxHashMap, Ledger, FRAME_DECODE_OPS, FRAME_ENCODE_OPS};
use wec_biconnectivity::BiconnQueryKey;
use wec_connectivity::ComponentId;
use wec_graph::Vertex;

use super::codec::{encode_frame, Frame, FrameBuf, WireFault};
use super::transport::Transport;
use crate::streaming::StreamingServer;
use crate::tenant::TenantId;
use crate::{NoBiconn, OracleHandle, ServeError, Snapshot};

/// Handle to one frontend connection, returned by [`Frontend::connect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(usize);

impl ConnId {
    /// The connection's slot index (connection order, 0-based).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Server-side state of one connection.
struct Conn {
    transport: Box<dyn Transport>,
    rx: FrameBuf,
    /// Tenant bound by `Hello`; unbound connections submit as
    /// [`TenantId::DEFAULT`].
    tenant: Option<TenantId>,
    /// Requests admitted whose answer frame has not been sent.
    in_flight: usize,
    closed: bool,
}

/// Cumulative frontend counters ([`Frontend::frontend_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Frames decoded off connections (including ones that failed to
    /// decode — every decode attempt of a complete frame counts).
    pub frames_in: u64,
    /// Frames written to connections (answers, errors, hello replies).
    pub frames_out: u64,
    /// Requests admitted into the streaming server.
    pub admitted: u64,
    /// Requests rejected because the connection's window was full.
    pub rejected_window: u64,
    /// Requests rejected by admission itself (shed, unknown tenant,
    /// quota).
    pub rejected_admission: u64,
    /// Complete frames that failed to decode, plus inbound
    /// `Answer`/`Error` protocol violations.
    pub malformed_frames: u64,
    /// `Hello` frames that bound a tenant.
    pub hellos_accepted: u64,
    /// `Hello` frames rejected (unknown tenant or bad credential).
    pub hellos_rejected: u64,
    /// Answer frames (including per-ticket error results) delivered to a
    /// live connection.
    pub answers_delivered: u64,
    /// Frames that could not be written because the transport failed.
    pub send_failures: u64,
    /// Connections observed closed (each connection counts once).
    pub conns_closed: u64,
}

/// What one [`Frontend::pump`] round did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Complete frames decoded this round.
    pub frames_in: usize,
    /// Requests admitted this round.
    pub admitted: usize,
    /// Queries dispatched to shards this round.
    pub dispatched: usize,
    /// Answer/error results delivered (sent or dropped-at-close) this
    /// round.
    pub delivered: usize,
}

impl PumpReport {
    fn merge(&mut self, other: PumpReport) {
        self.frames_in += other.frames_in;
        self.admitted += other.admitted;
        self.dispatched += other.dispatched;
        self.delivered += other.delivered;
    }

    fn idle(&self) -> bool {
        *self == PumpReport::default()
    }
}

/// Encode and send one frame, charging [`FRAME_ENCODE_OPS`]. A transport
/// failure closes the connection (counted once); the charge stands —
/// the encode work happened.
fn send_frame(conn: &mut Conn, led: &mut Ledger, stats: &mut FrontendStats, frame: &Frame) -> bool {
    led.op(FRAME_ENCODE_OPS);
    if conn.closed {
        return false;
    }
    match conn.transport.send(&encode_frame(frame)) {
        Ok(()) => {
            stats.frames_out += 1;
            true
        }
        Err(_) => {
            stats.send_failures += 1;
            stats.conns_closed += 1;
            conn.closed = true;
            false
        }
    }
}

/// The wire-protocol front end over a [`StreamingServer`].
///
/// ```
/// # use wec_asym::Ledger;
/// # use wec_connectivity::{ConnectivityOracle, OracleBuildOpts};
/// # use wec_graph::{gen, Priorities};
/// use wec_serve::{
///     encode_frame, loopback_pair, AdmissionPolicy, Frame, FrameBuf, Frontend, Query,
///     ShardedServer, StreamingServer, Transport,
/// };
///
/// # let g = gen::grid(4, 4);
/// # let pri = Priorities::random(16, 1);
/// # let verts: Vec<u32> = (0..16).collect();
/// # let mut led = Ledger::new(16);
/// # let oracle = ConnectivityOracle::build(
/// #     &mut led, &g, &pri, &verts, 2, 1, OracleBuildOpts::default());
/// let server = StreamingServer::new(
///     ShardedServer::new(oracle.query_handle(), 2),
///     AdmissionPolicy::builder().build(),
/// );
/// let mut fe = Frontend::new(server);
/// let (mut client, server_end) = loopback_pair();
/// fe.connect(Box::new(server_end));
///
/// // The client writes a request frame; one pump ingests, dispatches,
/// // and writes the answer frame back.
/// let q = Query::Connected(0, 15);
/// client.send(&encode_frame(&Frame::Request { query: q })).unwrap();
/// fe.pump(&mut led);
///
/// let mut rx = FrameBuf::default();
/// let mut buf = [0u8; 256];
/// let n = client.recv(&mut buf).unwrap();
/// rx.extend(&buf[..n]);
/// match rx.next_frame() {
///     Some(Ok(Frame::Answer { ticket, answer })) => {
///         assert_eq!(ticket, 0);
///         assert_eq!(answer.as_bool(), Some(true), "the grid is connected");
///     }
///     other => panic!("expected an answer frame, got {other:?}"),
/// }
/// ```
pub struct Frontend<C, B = NoBiconn> {
    server: StreamingServer<C, B>,
    conns: Vec<Conn>,
    /// Which connection submitted each in-flight ticket.
    ticket_conn: FxHashMap<u64, usize>,
    window: usize,
    stats: FrontendStats,
}

impl<C, B> Frontend<C, B>
where
    C: OracleHandle<Key = Vertex, Answer = ComponentId>,
    B: OracleHandle<Key = BiconnQueryKey, Answer = bool>,
{
    /// Wrap `server`; the per-connection window defaults to the
    /// admission policy's `max_queue`.
    pub fn new(server: StreamingServer<C, B>) -> Self {
        let window = server.policy().max_queue;
        Frontend {
            server,
            conns: Vec::new(),
            ticket_conn: FxHashMap::default(),
            window: window.max(1),
            stats: FrontendStats::default(),
        }
    }

    /// Set the per-connection in-flight window (clamped to at least 1).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// The per-connection in-flight window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Attach a connection; it is served on every subsequent pump, in
    /// connection order.
    pub fn connect(&mut self, transport: Box<dyn Transport>) -> ConnId {
        self.conns.push(Conn {
            transport,
            rx: FrameBuf::default(),
            tenant: None,
            in_flight: 0,
            closed: false,
        });
        ConnId(self.conns.len() - 1)
    }

    /// Requests admitted on `conn` whose answer has not been sent.
    pub fn conn_in_flight(&self, conn: ConnId) -> usize {
        self.conns[conn.0].in_flight
    }

    /// Whether `conn`'s transport has failed.
    pub fn conn_closed(&self, conn: ConnId) -> bool {
        self.conns[conn.0].closed
    }

    /// The owned streaming server.
    pub fn server(&self) -> &StreamingServer<C, B> {
        &self.server
    }

    /// Mutable access to the owned streaming server (e.g. to apply
    /// [`GraphDelta`](crate::GraphDelta) mutations between pumps).
    pub fn server_mut(&mut self) -> &mut StreamingServer<C, B> {
        &mut self.server
    }

    /// Cumulative frontend counters.
    pub fn frontend_stats(&self) -> FrontendStats {
        self.stats
    }

    /// One service round: ingest every connection, dispatch at most one
    /// micro-batch, deliver every deliverable answer. Deterministic —
    /// connections are served in [`ConnId`] order and every charge lands
    /// on `led` in a fixed sequence, so wire-served costs are
    /// bit-identical across `WEC_THREADS`.
    pub fn pump(&mut self, led: &mut Ledger) -> PumpReport {
        let mut report = PumpReport::default();
        let Frontend {
            server,
            conns,
            ticket_conn,
            window,
            stats,
        } = self;

        // 1. Ingest: bytes → frames → handling, per connection.
        let mut buf = [0u8; 1024];
        for (ci, conn) in conns.iter_mut().enumerate() {
            loop {
                match conn.transport.recv(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => conn.rx.extend(&buf[..n]),
                    Err(_) => {
                        if !conn.closed {
                            stats.conns_closed += 1;
                            conn.closed = true;
                        }
                        break;
                    }
                }
            }
            while let Some(decoded) = conn.rx.next_frame() {
                led.op(FRAME_DECODE_OPS);
                report.frames_in += 1;
                stats.frames_in += 1;
                match decoded {
                    Ok(Frame::Hello { tenant, credential }) => {
                        let verdict = if !server.tenancy_active() {
                            Ok(())
                        } else {
                            match server.policy().tenants.iter().find(|s| s.id == tenant) {
                                None => Err(ServeError::UnknownTenant(tenant)),
                                Some(spec) if spec.credential != credential => {
                                    Err(ServeError::MalformedFrame(WireFault::BadCredential))
                                }
                                Some(_) => Ok(()),
                            }
                        };
                        match verdict {
                            Ok(()) => {
                                conn.tenant = Some(tenant);
                                stats.hellos_accepted += 1;
                            }
                            Err(error) => {
                                stats.hellos_rejected += 1;
                                send_frame(
                                    conn,
                                    led,
                                    stats,
                                    &Frame::Error {
                                        ticket: None,
                                        error,
                                    },
                                );
                            }
                        }
                    }
                    Ok(Frame::Request { query }) => {
                        if conn.in_flight >= *window {
                            stats.rejected_window += 1;
                            send_frame(
                                conn,
                                led,
                                stats,
                                &Frame::Error {
                                    ticket: None,
                                    error: ServeError::Overloaded {
                                        queue_len: conn.in_flight,
                                        max_queue: *window,
                                    },
                                },
                            );
                            continue;
                        }
                        let tenant = conn.tenant.unwrap_or(TenantId::DEFAULT);
                        match server.submit_as(led, tenant, query) {
                            Ok(ticket) => {
                                ticket_conn.insert(ticket.id(), ci);
                                conn.in_flight += 1;
                                report.admitted += 1;
                                stats.admitted += 1;
                            }
                            Err(error) => {
                                stats.rejected_admission += 1;
                                send_frame(
                                    conn,
                                    led,
                                    stats,
                                    &Frame::Error {
                                        ticket: None,
                                        error,
                                    },
                                );
                            }
                        }
                    }
                    Ok(Frame::Answer { .. } | Frame::Error { .. }) => {
                        stats.malformed_frames += 1;
                        send_frame(
                            conn,
                            led,
                            stats,
                            &Frame::Error {
                                ticket: None,
                                error: ServeError::MalformedFrame(WireFault::UnexpectedFrame),
                            },
                        );
                    }
                    Err(error) => {
                        stats.malformed_frames += 1;
                        send_frame(
                            conn,
                            led,
                            stats,
                            &Frame::Error {
                                ticket: None,
                                error,
                            },
                        );
                    }
                }
            }
        }

        // 2. Dispatch one micro-batch.
        if server.queue_len() > 0 {
            report.dispatched += server.flush(led);
        }

        // 3. Deliver everything deliverable.
        while let Some((ticket, result)) = server.try_next() {
            report.delivered += 1;
            let Some(ci) = ticket_conn.remove(&ticket.id()) else {
                // Submitted through the in-process API on `server_mut()`;
                // not ours to answer.
                continue;
            };
            let conn = &mut conns[ci];
            conn.in_flight -= 1;
            let frame = match result {
                Ok(answer) => Frame::Answer {
                    ticket: ticket.id(),
                    answer,
                },
                Err(error) => Frame::Error {
                    ticket: Some(ticket.id()),
                    error,
                },
            };
            if send_frame(conn, led, stats, &frame) {
                stats.answers_delivered += 1;
            }
        }
        report
    }

    /// Pump until the server is fully drained (empty queue, nothing
    /// ready) and a further round would be a no-op. Returns the merged
    /// report of every round.
    pub fn drain(&mut self, led: &mut Ledger) -> PumpReport {
        let mut total = PumpReport::default();
        loop {
            let round = self.pump(led);
            let done = self.server.queue_len() == 0 && self.server.ready_len() == 0;
            total.merge(round);
            if done && round.idle() {
                return total;
            }
        }
    }
}

impl<C, B> Snapshot<FrontendStats> for Frontend<C, B>
where
    C: OracleHandle<Key = Vertex, Answer = ComponentId>,
    B: OracleHandle<Key = BiconnQueryKey, Answer = bool>,
{
    fn snapshot(&self) -> FrontendStats {
        self.frontend_stats()
    }
}
