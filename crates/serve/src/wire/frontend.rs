//! The connection-serving front end: owns a
//! [`StreamingServer`] and speaks the wire protocol
//! over any [`Transport`], and maps per-connection backpressure onto the
//! admission queue.
//!
//! ## Pump cycle
//!
//! [`Frontend::pump`] is one deterministic service round — and one tick
//! of **model time** (the lifecycle clock below) — sequential over
//! connections in [`ConnId`] order:
//!
//! 1. **Ingest** — flush each connection's deferred send queue, drain
//!    its transport into its [`FrameBuf`], decode, and handle each
//!    frame, charging [`FRAME_DECODE_OPS`] per decode attempt
//!    (well-formed or not) on the pumping ledger. `Hello` binds the
//!    connection to a tenant (checked against the registered credential
//!    when tenancy is active); v2 `Hello` additionally binds a
//!    *session*; `Request` is admitted through
//!    [`StreamingServer::submit_as`](crate::StreamingServer::submit_as);
//!    v2 `Request` first probes the session's dedup window; inbound
//!    `Answer`/`Error` frames are protocol violations
//!    ([`WireFault::UnexpectedFrame`]).
//! 2. **Dispatch** — one [`flush`](crate::StreamingServer::flush) if the
//!    queue is non-empty.
//! 3. **Deliver** — every deliverable result is encoded
//!    ([`FRAME_ENCODE_OPS`] each) and sent to the connection (v1) or
//!    session (v2) that submitted it.
//!
//! ## Windows as backpressure
//!
//! Each connection may have at most `window` requests in flight
//! (submitted, answer not yet sent). A request over the window is
//! answered with a typed [`ServeError::Overloaded`] error frame —
//! `queue_len` reporting the connection's in-flight count and
//! `max_queue` its window — and **never** a dropped byte: the connection
//! stays synchronized and other connections keep submitting. The window
//! defaults to the admission policy's `max_queue`, so a single
//! connection cannot force the server-side
//! [`Overflow::Shed`](crate::Overflow::Shed) path on its own.
//!
//! ## Connection lifecycle
//!
//! [`LifecyclePolicy`] adds four opt-in behaviors, all clocked in model
//! time (pump rounds), all **off by default** so a default frontend is
//! behavior- and charge-identical to one predating the policy:
//!
//! * **Idle deadlines + keepalive.** A connection silent for
//!   `idle_deadline` rounds is sent a [`Frame::Ping`]; if no frame
//!   arrives within `ping_grace` further rounds it is sent
//!   [`Frame::Goaway`] (`IdleTimeout`) and closed.
//! * **Strike escalation.** Each malformed or protocol-violating frame
//!   is a strike (every one still answered with a typed error frame);
//!   at `max_strikes` the connection is sent `Goaway` (`Misbehavior`)
//!   and closed — a misbehaving peer degrades loudly, never silently.
//! * **Bounded send buffers.** A frame the transport reports
//!   [`TransportError::Busy`] for is queued on the connection's
//!   deferred send queue and flushed in later rounds, preserving order.
//!   When the queue reaches `send_buffer` frames the frontend stops
//!   *ingesting* that connection (its bytes keep accumulating in the
//!   transport, whose flow control is the peer's problem) — slow
//!   clients cost bounded memory and never a dropped byte.
//! * **Session dedup windows.** Each v2 session keeps its last
//!   `dedup_window` correlation ids with their outcomes: a resubmitted
//!   in-flight correlation id is suppressed, a resubmitted completed
//!   one is re-answered from the record. Combined with client
//!   resubmission this turns at-least-once delivery into exactly-once
//!   answers (see [`WireClient`](super::WireClient)).
//!
//! ## Graceful shutdown
//!
//! [`Frontend::begin_shutdown`] announces [`Frame::Goaway`]
//! (`Shutdown`) on every live connection; from then on fresh requests
//! are answered with typed [`ServeError::ShuttingDown`] error frames
//! while everything already in flight drains normally. A draining
//! connection (server shutdown or an inbound client `Goaway`) closes as
//! soon as nothing remains in flight for it and its send queue is
//! empty. [`Frontend::shutdown`] is the full sequence: announce, drain,
//! close.
//!
//! ## Faults
//!
//! Every failure is answered in-band: malformed frames, bad credentials,
//! tenant rejections, rebinds, post-`Goaway` submissions, and
//! over-window requests each produce an error frame carrying the same
//! [`ServeError`] the in-process API returns. A
//! connection is only ever *closed* by its transport
//! ([`TransportError`] on send or receive) or by
//! the lifecycle policy above; close is counted, buffered frames
//! already received are still served, and undeliverable answers are
//! parked (v2: replayable from the dedup record) or dropped after
//! accounting (v1).

use std::collections::VecDeque;

use wec_asym::{
    FxHashMap, Ledger, DEDUP_INSERT_WRITES, DEDUP_PROBE_OPS, FRAME_DECODE_OPS, FRAME_ENCODE_OPS,
    SESSION_BIND_OPS,
};
use wec_biconnectivity::BiconnQueryKey;
use wec_connectivity::ComponentId;
use wec_graph::Vertex;

use super::codec::{encode_frame, Frame, FrameBuf, GoawayReason, WireFault};
use super::transport::{Transport, TransportError};
use crate::streaming::StreamingServer;
use crate::tenant::TenantId;
use crate::{NoBiconn, OracleHandle, ServeError, ServeResult, Snapshot};

/// Handle to one frontend connection, returned by [`Frontend::connect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(usize);

impl ConnId {
    /// The connection's slot index (connection order, 0-based).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opt-in connection-lifecycle knobs, clocked in model time (pump
/// rounds). The default disables everything that could alter the
/// charge sequence of a pre-lifecycle frontend: no idle deadline, no
/// strike limit, no send-buffer bound. `dedup_window` only matters to
/// v2 sessions, which do not exist unless a peer speaks v2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecyclePolicy {
    /// Rounds a connection may sit without a decoded frame before it is
    /// pinged (0 disables idle handling entirely).
    pub idle_deadline: u64,
    /// Rounds after a ping before the silent connection is told
    /// `Goaway` (`IdleTimeout`) and closed.
    pub ping_grace: u64,
    /// Malformed/protocol-violating frames tolerated before `Goaway`
    /// (`Misbehavior`) and close (0 disables strikes).
    pub max_strikes: u32,
    /// Deferred send-queue length at which the frontend stops ingesting
    /// a slow connection (0 = unbounded queue, never stop ingesting).
    pub send_buffer: usize,
    /// Correlation ids remembered per v2 session (clamped to ≥ 1); the
    /// idempotence horizon for client resubmission.
    pub dedup_window: usize,
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        LifecyclePolicy {
            idle_deadline: 0,
            ping_grace: 2,
            max_strikes: 0,
            send_buffer: 0,
            dedup_window: 1024,
        }
    }
}

/// Server-side state of one connection.
struct Conn {
    transport: Box<dyn Transport>,
    rx: FrameBuf,
    /// Encoded frames the transport was too busy to take, flushed in
    /// order on later rounds.
    tx: VecDeque<Vec<u8>>,
    /// Tenant bound by `Hello`; unbound connections submit as
    /// [`TenantId::DEFAULT`].
    tenant: Option<TenantId>,
    /// Session bound by a v2 `Hello`.
    session: Option<u64>,
    /// v1 requests admitted whose answer frame has not been sent.
    in_flight: usize,
    /// Model time of the last decoded frame.
    last_rx: u64,
    /// When a keepalive ping was sent, until answered by any frame.
    ping_sent: Option<u64>,
    /// Malformed/protocol-violation count toward `max_strikes`.
    strikes: u32,
    /// `Goaway` exchanged (either direction): no new work, drain and
    /// close.
    draining: bool,
    closed: bool,
}

/// A placeholder transport for connections the frontend has retired;
/// swapping it in drops the real transport (closing loopback pipes /
/// sockets) while keeping the slot's stats readable.
struct DeadTransport;

impl Transport for DeadTransport {
    fn send(&mut self, _bytes: &[u8]) -> Result<(), TransportError> {
        Err(TransportError::Closed)
    }

    fn recv(&mut self, _buf: &mut [u8]) -> Result<usize, TransportError> {
        Err(TransportError::Closed)
    }
}

/// Where an in-flight ticket's answer goes.
enum Dest {
    /// A v1 connection slot.
    Conn(usize),
    /// A v2 session and the request's correlation id.
    Session { session: u64, corr: u64 },
}

/// The server half of a v2 session: survives reconnects, carries the
/// dedup window that makes resubmission idempotent.
struct Session {
    /// The connection currently speaking for this session.
    conn: Option<usize>,
    /// v2 requests admitted whose answer has not been recorded.
    in_flight: usize,
    /// Correlation id → outcome, bounded by the policy's `dedup_window`.
    dedup: FxHashMap<u64, DedupState>,
    /// Insertion order of `dedup` keys, for window eviction.
    order: VecDeque<u64>,
}

enum DedupState {
    /// Submitted, not yet answered: a duplicate is suppressed.
    Pending,
    /// Answered: a duplicate is re-answered from the record.
    Done(ServeResult),
}

/// Cumulative frontend counters ([`Frontend::frontend_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Frames decoded off connections (including ones that failed to
    /// decode — every decode attempt of a complete frame counts).
    pub frames_in: u64,
    /// Frames written to connections (answers, errors, hello replies).
    pub frames_out: u64,
    /// Requests admitted into the streaming server.
    pub admitted: u64,
    /// Requests rejected because the connection's window was full.
    pub rejected_window: u64,
    /// Requests rejected by admission itself (shed, unknown tenant,
    /// quota).
    pub rejected_admission: u64,
    /// Requests rejected with [`ServeError::ShuttingDown`] after a
    /// `Goaway` was exchanged.
    pub rejected_shutdown: u64,
    /// Complete frames that failed to decode, plus inbound
    /// `Answer`/`Error` protocol violations and rebinds.
    pub malformed_frames: u64,
    /// `Hello` frames that bound a tenant.
    pub hellos_accepted: u64,
    /// `Hello` frames rejected (unknown tenant or bad credential).
    pub hellos_rejected: u64,
    /// v2 sessions created.
    pub sessions_bound: u64,
    /// v2 sessions rebound to a new connection (reconnects).
    pub sessions_rebound: u64,
    /// v2 requests whose correlation id was already in flight —
    /// suppressed, answered once by the pending ticket.
    pub dup_requests_suppressed: u64,
    /// v2 requests whose correlation id was already answered —
    /// re-answered from the dedup record without recomputation.
    pub dup_answers_replayed: u64,
    /// Answer frames (including per-ticket error results) delivered to a
    /// live connection.
    pub answers_delivered: u64,
    /// v2 answers whose session had no live connection at delivery
    /// time; the outcome is recorded for replay on resubmission.
    pub answers_parked: u64,
    /// Frames that could not be written because the transport failed.
    pub send_failures: u64,
    /// Keepalive pings sent to idle connections.
    pub pings_sent: u64,
    /// `Goaway` frames sent (shutdown, idle, misbehavior).
    pub goaways_sent: u64,
    /// `Goaway` frames received from clients.
    pub goaways_received: u64,
    /// Connections closed for missing the idle deadline.
    pub idle_closed: u64,
    /// Connections closed for reaching the strike limit.
    pub strike_closed: u64,
    /// Ingest rounds skipped because a connection's send queue sat at
    /// the `send_buffer` bound (slow-client backpressure).
    pub backpressure_skips: u64,
    /// Connections observed closed (each connection counts once).
    pub conns_closed: u64,
}

/// What one [`Frontend::pump`] round did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Complete frames decoded this round.
    pub frames_in: usize,
    /// Requests admitted this round.
    pub admitted: usize,
    /// Queries dispatched to shards this round.
    pub dispatched: usize,
    /// Answer/error results delivered (sent, parked, or
    /// dropped-at-close) this round.
    pub delivered: usize,
}

impl PumpReport {
    fn merge(&mut self, other: PumpReport) {
        self.frames_in += other.frames_in;
        self.admitted += other.admitted;
        self.dispatched += other.dispatched;
        self.delivered += other.delivered;
    }

    fn idle(&self) -> bool {
        *self == PumpReport::default()
    }
}

/// Retire a connection: swap in a [`DeadTransport`] (dropping the real
/// one closes the pipe) and count the close once.
fn close_conn(conn: &mut Conn, stats: &mut FrontendStats) {
    if !conn.closed {
        conn.closed = true;
        stats.conns_closed += 1;
    }
    conn.transport = Box::new(DeadTransport);
    conn.tx.clear();
}

/// Push the connection's deferred frames into the transport, in order,
/// stopping at the first [`TransportError::Busy`]. A fatal transport
/// error closes the connection.
fn flush_tx(conn: &mut Conn, stats: &mut FrontendStats) {
    while let Some(front) = conn.tx.front() {
        match conn.transport.send(front) {
            Ok(()) => {
                stats.frames_out += 1;
                conn.tx.pop_front();
            }
            Err(TransportError::Busy) => return,
            Err(_) => {
                stats.send_failures += 1;
                close_conn(conn, stats);
                return;
            }
        }
    }
}

/// Encode and send one frame, charging [`FRAME_ENCODE_OPS`]. A busy
/// transport defers the frame onto the connection's send queue (the
/// charge stands — the encode work happened); a fatal transport failure
/// closes the connection (counted once). Returns `false` only when the
/// frame is gone for good (connection closed).
fn send_frame(conn: &mut Conn, led: &mut Ledger, stats: &mut FrontendStats, frame: &Frame) -> bool {
    led.op(FRAME_ENCODE_OPS);
    if conn.closed {
        return false;
    }
    let bytes = encode_frame(frame);
    if !conn.tx.is_empty() {
        // Keep order: earlier deferred frames go first.
        conn.tx.push_back(bytes);
        return true;
    }
    match conn.transport.send(&bytes) {
        Ok(()) => {
            stats.frames_out += 1;
            true
        }
        Err(TransportError::Busy) => {
            conn.tx.push_back(bytes);
            true
        }
        Err(_) => {
            stats.send_failures += 1;
            close_conn(conn, stats);
            false
        }
    }
}

/// One strike against a misbehaving connection; at the policy's limit
/// the connection is told `Goaway` (`Misbehavior`) and closed.
fn strike(conn: &mut Conn, led: &mut Ledger, stats: &mut FrontendStats, policy: &LifecyclePolicy) {
    conn.strikes += 1;
    if policy.max_strikes > 0 && conn.strikes >= policy.max_strikes && !conn.closed {
        send_frame(
            conn,
            led,
            stats,
            &Frame::Goaway {
                reason: GoawayReason::Misbehavior,
            },
        );
        stats.goaways_sent += 1;
        stats.strike_closed += 1;
        close_conn(conn, stats);
    }
}

/// The wire-protocol front end over a [`StreamingServer`].
///
/// ```
/// # use wec_asym::Ledger;
/// # use wec_connectivity::{ConnectivityOracle, OracleBuildOpts};
/// # use wec_graph::{gen, Priorities};
/// use wec_serve::{
///     encode_frame, loopback_pair, AdmissionPolicy, Frame, FrameBuf, Frontend, Query,
///     ShardedServer, StreamingServer, Transport,
/// };
///
/// # let g = gen::grid(4, 4);
/// # let pri = Priorities::random(16, 1);
/// # let verts: Vec<u32> = (0..16).collect();
/// # let mut led = Ledger::new(16);
/// # let oracle = ConnectivityOracle::build(
/// #     &mut led, &g, &pri, &verts, 2, 1, OracleBuildOpts::default());
/// let server = StreamingServer::new(
///     ShardedServer::new(oracle.query_handle(), 2),
///     AdmissionPolicy::builder().build(),
/// );
/// let mut fe = Frontend::new(server);
/// let (mut client, server_end) = loopback_pair();
/// fe.connect(Box::new(server_end));
///
/// // The client writes a request frame; one pump ingests, dispatches,
/// // and writes the answer frame back.
/// let q = Query::Connected(0, 15);
/// client.send(&encode_frame(&Frame::Request { query: q })).unwrap();
/// fe.pump(&mut led);
///
/// let mut rx = FrameBuf::default();
/// let mut buf = [0u8; 256];
/// let n = client.recv(&mut buf).unwrap();
/// rx.extend(&buf[..n]);
/// match rx.next_frame() {
///     Some(Ok(Frame::Answer { ticket, answer })) => {
///         assert_eq!(ticket, 0);
///         assert_eq!(answer.as_bool(), Some(true), "the grid is connected");
///     }
///     other => panic!("expected an answer frame, got {other:?}"),
/// }
/// ```
pub struct Frontend<C, B = NoBiconn> {
    server: StreamingServer<C, B>,
    conns: Vec<Conn>,
    /// Where each in-flight ticket's answer goes.
    ticket_dest: FxHashMap<u64, Dest>,
    /// v2 sessions by client-chosen session id.
    sessions: FxHashMap<u64, Session>,
    window: usize,
    lifecycle: LifecyclePolicy,
    /// Model time: pump rounds so far.
    now: u64,
    /// `begin_shutdown` was called: fresh requests are rejected
    /// [`ServeError::ShuttingDown`], draining connections close.
    shutting_down: bool,
    stats: FrontendStats,
}

impl<C, B> Frontend<C, B>
where
    C: OracleHandle<Key = Vertex, Answer = ComponentId>,
    B: OracleHandle<Key = BiconnQueryKey, Answer = bool>,
{
    /// Wrap `server`; the per-connection window defaults to the
    /// admission policy's `max_queue`, the lifecycle policy to
    /// [`LifecyclePolicy::default`] (everything off).
    pub fn new(server: StreamingServer<C, B>) -> Self {
        let window = server.policy().max_queue;
        Frontend {
            server,
            conns: Vec::new(),
            ticket_dest: FxHashMap::default(),
            sessions: FxHashMap::default(),
            window: window.max(1),
            lifecycle: LifecyclePolicy::default(),
            now: 0,
            shutting_down: false,
            stats: FrontendStats::default(),
        }
    }

    /// Set the per-connection in-flight window (clamped to at least 1).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Set the connection-lifecycle policy.
    pub fn with_lifecycle(mut self, lifecycle: LifecyclePolicy) -> Self {
        self.lifecycle = lifecycle;
        self
    }

    /// The per-connection in-flight window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The connection-lifecycle policy.
    pub fn lifecycle(&self) -> LifecyclePolicy {
        self.lifecycle
    }

    /// Model time: pump rounds completed.
    pub fn model_time(&self) -> u64 {
        self.now
    }

    /// Whether [`Frontend::begin_shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// Attach a connection; it is served on every subsequent pump, in
    /// connection order.
    pub fn connect(&mut self, transport: Box<dyn Transport>) -> ConnId {
        self.conns.push(Conn {
            transport,
            rx: FrameBuf::default(),
            tx: VecDeque::new(),
            tenant: None,
            session: None,
            in_flight: 0,
            last_rx: self.now,
            ping_sent: None,
            strikes: 0,
            draining: self.shutting_down,
            closed: false,
        });
        ConnId(self.conns.len() - 1)
    }

    /// v1 requests admitted on `conn` whose answer has not been sent.
    pub fn conn_in_flight(&self, conn: ConnId) -> usize {
        self.conns[conn.0].in_flight
    }

    /// Whether `conn`'s transport has failed or been retired.
    pub fn conn_closed(&self, conn: ConnId) -> bool {
        self.conns[conn.0].closed
    }

    /// v2 requests in flight for `session` (`None` for an unknown
    /// session id).
    pub fn session_in_flight(&self, session: u64) -> Option<usize> {
        self.sessions.get(&session).map(|s| s.in_flight)
    }

    /// The owned streaming server.
    pub fn server(&self) -> &StreamingServer<C, B> {
        &self.server
    }

    /// Mutable access to the owned streaming server (e.g. to apply
    /// [`GraphDelta`](crate::GraphDelta) mutations between pumps).
    pub fn server_mut(&mut self) -> &mut StreamingServer<C, B> {
        &mut self.server
    }

    /// Cumulative frontend counters.
    pub fn frontend_stats(&self) -> FrontendStats {
        self.stats
    }

    /// One service round: ingest every connection, dispatch at most one
    /// micro-batch, deliver every deliverable answer. Deterministic —
    /// connections are served in [`ConnId`] order and every charge lands
    /// on `led` in a fixed sequence, so wire-served costs are
    /// bit-identical across `WEC_THREADS`.
    pub fn pump(&mut self, led: &mut Ledger) -> PumpReport {
        self.now += 1;
        let mut report = PumpReport::default();
        let Frontend {
            server,
            conns,
            ticket_dest,
            sessions,
            window,
            lifecycle,
            now,
            shutting_down,
            stats,
        } = self;
        let now = *now;

        // 1. Ingest: deferred sends out, bytes → frames → handling, per
        //    connection.
        let mut buf = [0u8; 1024];
        for (ci, conn) in conns.iter_mut().enumerate() {
            flush_tx(conn, stats);
            if lifecycle.send_buffer > 0 && conn.tx.len() >= lifecycle.send_buffer {
                // Slow client: stop reading until its queue drains. Its
                // unread bytes wait in the transport — bounded memory
                // here, never a dropped byte.
                stats.backpressure_skips += 1;
                continue;
            }
            if !conn.closed {
                loop {
                    match conn.transport.recv(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => conn.rx.extend(&buf[..n]),
                        Err(TransportError::Busy) => break,
                        Err(_) => {
                            close_conn(conn, stats);
                            break;
                        }
                    }
                }
            }
            let mut rx_frames = 0u64;
            while let Some(decoded) = conn.rx.next_frame() {
                led.op(FRAME_DECODE_OPS);
                report.frames_in += 1;
                stats.frames_in += 1;
                rx_frames += 1;
                match decoded {
                    Ok(Frame::Hello { tenant, credential }) => {
                        if conn.draining || *shutting_down {
                            stats.rejected_shutdown += 1;
                            send_frame(
                                conn,
                                led,
                                stats,
                                &Frame::Error {
                                    ticket: None,
                                    error: ServeError::ShuttingDown,
                                },
                            );
                            continue;
                        }
                        if conn.tenant.is_some() || conn.session.is_some() {
                            stats.malformed_frames += 1;
                            send_frame(
                                conn,
                                led,
                                stats,
                                &Frame::Error {
                                    ticket: None,
                                    error: ServeError::MalformedFrame(WireFault::Rebind),
                                },
                            );
                            strike(conn, led, stats, lifecycle);
                            continue;
                        }
                        match hello_verdict(server, tenant, credential) {
                            Ok(()) => {
                                conn.tenant = Some(tenant);
                                stats.hellos_accepted += 1;
                            }
                            Err(error) => {
                                stats.hellos_rejected += 1;
                                send_frame(
                                    conn,
                                    led,
                                    stats,
                                    &Frame::Error {
                                        ticket: None,
                                        error,
                                    },
                                );
                            }
                        }
                    }
                    Ok(Frame::HelloV2 {
                        tenant,
                        credential,
                        session,
                    }) => {
                        if conn.draining || *shutting_down {
                            stats.rejected_shutdown += 1;
                            send_frame(
                                conn,
                                led,
                                stats,
                                &Frame::ErrorV2 {
                                    corr: None,
                                    error: ServeError::ShuttingDown,
                                },
                            );
                            continue;
                        }
                        if conn.tenant.is_some() || conn.session.is_some() {
                            stats.malformed_frames += 1;
                            send_frame(
                                conn,
                                led,
                                stats,
                                &Frame::ErrorV2 {
                                    corr: None,
                                    error: ServeError::MalformedFrame(WireFault::Rebind),
                                },
                            );
                            strike(conn, led, stats, lifecycle);
                            continue;
                        }
                        match hello_verdict(server, tenant, credential) {
                            Ok(()) => {
                                led.op(SESSION_BIND_OPS);
                                conn.tenant = Some(tenant);
                                conn.session = Some(session);
                                match sessions.entry(session) {
                                    std::collections::hash_map::Entry::Occupied(mut e) => {
                                        // Reconnect: the session (and its
                                        // dedup window) follows the client
                                        // to the new connection.
                                        e.get_mut().conn = Some(ci);
                                        stats.sessions_rebound += 1;
                                    }
                                    std::collections::hash_map::Entry::Vacant(e) => {
                                        e.insert(Session {
                                            conn: Some(ci),
                                            in_flight: 0,
                                            dedup: FxHashMap::default(),
                                            order: VecDeque::new(),
                                        });
                                        stats.sessions_bound += 1;
                                    }
                                }
                                stats.hellos_accepted += 1;
                            }
                            Err(error) => {
                                stats.hellos_rejected += 1;
                                send_frame(conn, led, stats, &Frame::ErrorV2 { corr: None, error });
                            }
                        }
                    }
                    Ok(Frame::Request { query }) => {
                        if conn.draining || *shutting_down {
                            stats.rejected_shutdown += 1;
                            send_frame(
                                conn,
                                led,
                                stats,
                                &Frame::Error {
                                    ticket: None,
                                    error: ServeError::ShuttingDown,
                                },
                            );
                            continue;
                        }
                        if conn.in_flight >= *window {
                            stats.rejected_window += 1;
                            send_frame(
                                conn,
                                led,
                                stats,
                                &Frame::Error {
                                    ticket: None,
                                    error: ServeError::Overloaded {
                                        queue_len: conn.in_flight,
                                        max_queue: *window,
                                    },
                                },
                            );
                            continue;
                        }
                        let tenant = conn.tenant.unwrap_or(TenantId::DEFAULT);
                        match server.submit_as(led, tenant, query) {
                            Ok(ticket) => {
                                ticket_dest.insert(ticket.id(), Dest::Conn(ci));
                                conn.in_flight += 1;
                                report.admitted += 1;
                                stats.admitted += 1;
                            }
                            Err(error) => {
                                stats.rejected_admission += 1;
                                send_frame(
                                    conn,
                                    led,
                                    stats,
                                    &Frame::Error {
                                        ticket: None,
                                        error,
                                    },
                                );
                            }
                        }
                    }
                    Ok(Frame::RequestV2 { corr, query }) => {
                        let Some(sid) = conn.session else {
                            // v2 requests require a session; an unbound
                            // one is a protocol violation, answered typed.
                            stats.malformed_frames += 1;
                            send_frame(
                                conn,
                                led,
                                stats,
                                &Frame::ErrorV2 {
                                    corr: Some(corr),
                                    error: ServeError::MalformedFrame(WireFault::UnexpectedFrame),
                                },
                            );
                            strike(conn, led, stats, lifecycle);
                            continue;
                        };
                        let sess = sessions.get_mut(&sid).expect("bound sessions exist");
                        led.op(DEDUP_PROBE_OPS);
                        match sess.dedup.get(&corr) {
                            Some(DedupState::Pending) => {
                                // Already in flight: the one pending
                                // ticket will answer it. At-least-once in,
                                // exactly-once out.
                                stats.dup_requests_suppressed += 1;
                                continue;
                            }
                            Some(DedupState::Done(result)) => {
                                stats.dup_answers_replayed += 1;
                                let frame = answer_frame_v2(corr, *result);
                                send_frame(conn, led, stats, &frame);
                                continue;
                            }
                            None => {}
                        }
                        if conn.draining || *shutting_down {
                            stats.rejected_shutdown += 1;
                            send_frame(
                                conn,
                                led,
                                stats,
                                &Frame::ErrorV2 {
                                    corr: Some(corr),
                                    error: ServeError::ShuttingDown,
                                },
                            );
                            continue;
                        }
                        if sess.in_flight >= *window {
                            stats.rejected_window += 1;
                            send_frame(
                                conn,
                                led,
                                stats,
                                &Frame::ErrorV2 {
                                    corr: Some(corr),
                                    error: ServeError::Overloaded {
                                        queue_len: sess.in_flight,
                                        max_queue: *window,
                                    },
                                },
                            );
                            continue;
                        }
                        let tenant = conn.tenant.unwrap_or(TenantId::DEFAULT);
                        match server.submit_as(led, tenant, query) {
                            Ok(ticket) => {
                                ticket_dest
                                    .insert(ticket.id(), Dest::Session { session: sid, corr });
                                sess.in_flight += 1;
                                led.write(DEDUP_INSERT_WRITES);
                                sess.dedup.insert(corr, DedupState::Pending);
                                sess.order.push_back(corr);
                                // Evict beyond the window, oldest first;
                                // pending entries are immortal (they are
                                // bounded by the in-flight window).
                                while sess.order.len() > lifecycle.dedup_window.max(1) {
                                    let oldest = sess.order[0];
                                    if matches!(sess.dedup.get(&oldest), Some(DedupState::Pending))
                                    {
                                        break;
                                    }
                                    sess.order.pop_front();
                                    sess.dedup.remove(&oldest);
                                }
                                report.admitted += 1;
                                stats.admitted += 1;
                            }
                            Err(error) => {
                                stats.rejected_admission += 1;
                                send_frame(
                                    conn,
                                    led,
                                    stats,
                                    &Frame::ErrorV2 {
                                        corr: Some(corr),
                                        error,
                                    },
                                );
                            }
                        }
                    }
                    Ok(Frame::Ping { nonce }) => {
                        send_frame(conn, led, stats, &Frame::Pong { nonce });
                    }
                    Ok(Frame::Pong { .. }) => {
                        // Any frame clears the ping below; nothing else
                        // to do.
                    }
                    Ok(Frame::Goaway { .. }) => {
                        stats.goaways_received += 1;
                        conn.draining = true;
                    }
                    Ok(
                        Frame::Answer { .. }
                        | Frame::Error { .. }
                        | Frame::AnswerV2 { .. }
                        | Frame::ErrorV2 { .. },
                    ) => {
                        stats.malformed_frames += 1;
                        send_frame(
                            conn,
                            led,
                            stats,
                            &Frame::Error {
                                ticket: None,
                                error: ServeError::MalformedFrame(WireFault::UnexpectedFrame),
                            },
                        );
                        strike(conn, led, stats, lifecycle);
                    }
                    Err(error) => {
                        stats.malformed_frames += 1;
                        send_frame(
                            conn,
                            led,
                            stats,
                            &Frame::Error {
                                ticket: None,
                                error,
                            },
                        );
                        strike(conn, led, stats, lifecycle);
                    }
                }
            }

            // Lifecycle: keepalive and idle eviction in model time.
            if rx_frames > 0 {
                conn.last_rx = now;
                conn.ping_sent = None;
            } else if lifecycle.idle_deadline > 0 && !conn.closed {
                match conn.ping_sent {
                    None if now.saturating_sub(conn.last_rx) >= lifecycle.idle_deadline => {
                        stats.pings_sent += 1;
                        send_frame(conn, led, stats, &Frame::Ping { nonce: now });
                        conn.ping_sent = Some(now);
                    }
                    Some(pinged) if now.saturating_sub(pinged) >= lifecycle.ping_grace => {
                        stats.goaways_sent += 1;
                        stats.idle_closed += 1;
                        send_frame(
                            conn,
                            led,
                            stats,
                            &Frame::Goaway {
                                reason: GoawayReason::IdleTimeout,
                            },
                        );
                        close_conn(conn, stats);
                    }
                    _ => {}
                }
            }
        }

        // 2. Dispatch one micro-batch.
        if server.queue_len() > 0 {
            report.dispatched += server.flush(led);
        }

        // 3. Deliver everything deliverable.
        while let Some((ticket, result)) = server.try_next() {
            report.delivered += 1;
            match ticket_dest.remove(&ticket.id()) {
                None => {
                    // Submitted through the in-process API on
                    // `server_mut()`; not ours to answer.
                }
                Some(Dest::Conn(ci)) => {
                    let conn = &mut conns[ci];
                    conn.in_flight -= 1;
                    let frame = match result {
                        Ok(answer) => Frame::Answer {
                            ticket: ticket.id(),
                            answer,
                        },
                        Err(error) => Frame::Error {
                            ticket: Some(ticket.id()),
                            error,
                        },
                    };
                    if send_frame(conn, led, stats, &frame) {
                        stats.answers_delivered += 1;
                    }
                }
                Some(Dest::Session { session, corr }) => {
                    let Some(sess) = sessions.get_mut(&session) else {
                        continue;
                    };
                    sess.in_flight = sess.in_flight.saturating_sub(1);
                    // Record the outcome first: even if the connection is
                    // gone, a resubmission replays it — the exactly-once
                    // contract does not depend on this delivery landing.
                    if let Some(state) = sess.dedup.get_mut(&corr) {
                        *state = DedupState::Done(result);
                    }
                    let frame = answer_frame_v2(corr, result);
                    match sess.conn {
                        Some(ci) if !conns[ci].closed => {
                            if send_frame(&mut conns[ci], led, stats, &frame) {
                                stats.answers_delivered += 1;
                            } else {
                                stats.answers_parked += 1;
                            }
                        }
                        _ => stats.answers_parked += 1,
                    }
                }
            }
        }

        // 4. Close draining connections with nothing left to say.
        for conn in conns.iter_mut() {
            if conn.closed || !conn.draining || !conn.tx.is_empty() || conn.in_flight > 0 {
                continue;
            }
            let session_busy = conn
                .session
                .and_then(|sid| sessions.get(&sid))
                .is_some_and(|s| s.in_flight > 0);
            if !session_busy {
                close_conn(conn, stats);
            }
        }
        report
    }

    /// Pump until the server is fully drained (empty queue, nothing
    /// ready) and a further round would be a no-op. Returns the merged
    /// report of every round.
    pub fn drain(&mut self, led: &mut Ledger) -> PumpReport {
        let mut total = PumpReport::default();
        loop {
            let round = self.pump(led);
            let done = self.server.queue_len() == 0 && self.server.ready_len() == 0;
            total.merge(round);
            if done && round.idle() {
                return total;
            }
        }
    }

    /// Announce graceful shutdown: every live connection is sent
    /// [`Frame::Goaway`] (`Shutdown`) and marked draining. Fresh
    /// requests from here on are answered with typed
    /// [`ServeError::ShuttingDown`] error frames; in-flight tickets
    /// keep draining through [`Frontend::pump`] / [`Frontend::drain`],
    /// and each connection closes once nothing remains in flight for
    /// it.
    pub fn begin_shutdown(&mut self, led: &mut Ledger) {
        if self.shutting_down {
            return;
        }
        self.shutting_down = true;
        for conn in self.conns.iter_mut() {
            conn.draining = true;
            if conn.closed {
                continue;
            }
            self.stats.goaways_sent += 1;
            send_frame(
                conn,
                led,
                &mut self.stats,
                &Frame::Goaway {
                    reason: GoawayReason::Shutdown,
                },
            );
        }
    }

    /// The full graceful-shutdown sequence: announce
    /// ([`Frontend::begin_shutdown`]), drain every in-flight ticket,
    /// close every connection. No admitted request is abandoned and no
    /// buffered byte dropped: everything in flight is answered (or, for
    /// a v2 session without a live connection, recorded for replay)
    /// before the close.
    pub fn shutdown(&mut self, led: &mut Ledger) -> PumpReport {
        self.begin_shutdown(led);
        let report = self.drain(led);
        for conn in self.conns.iter_mut() {
            if !conn.closed {
                flush_tx(conn, &mut self.stats);
                close_conn(conn, &mut self.stats);
            }
        }
        report
    }
}

/// Gate a `Hello` against the tenant registry: with tenancy inactive
/// everything binds; otherwise the tenant must exist and the credential
/// must match.
fn hello_verdict<C, B>(
    server: &StreamingServer<C, B>,
    tenant: TenantId,
    credential: u64,
) -> Result<(), ServeError>
where
    C: OracleHandle<Key = Vertex, Answer = ComponentId>,
    B: OracleHandle<Key = BiconnQueryKey, Answer = bool>,
{
    if !server.tenancy_active() {
        return Ok(());
    }
    match server.policy().tenants.iter().find(|s| s.id == tenant) {
        None => Err(ServeError::UnknownTenant(tenant)),
        Some(spec) if spec.credential != credential => {
            Err(ServeError::MalformedFrame(WireFault::BadCredential))
        }
        Some(_) => Ok(()),
    }
}

/// The v2 delivery frame for one recorded outcome.
fn answer_frame_v2(corr: u64, result: ServeResult) -> Frame {
    match result {
        Ok(answer) => Frame::AnswerV2 { corr, answer },
        Err(error) => Frame::ErrorV2 {
            corr: Some(corr),
            error,
        },
    }
}

impl<C, B> Snapshot<FrontendStats> for Frontend<C, B>
where
    C: OracleHandle<Key = Vertex, Answer = ComponentId>,
    B: OracleHandle<Key = BiconnQueryKey, Answer = bool>,
{
    fn snapshot(&self) -> FrontendStats {
        self.frontend_stats()
    }
}
