//! The byte-protocol front end: a length-prefixed binary wire format for
//! queries, answers, typed errors, and tenant credentials, behind a
//! swappable [`Transport`] trait, with a [`Frontend`] that owns a
//! [`StreamingServer`](crate::StreamingServer) and serves connections,
//! a deterministic byte-level fault injector ([`chaos`]), and an
//! exactly-once retrying [`WireClient`].
//!
//! ## Frame layout
//!
//! Every frame is one length-prefixed record:
//!
//! ```text
//! ┌───────────┬──────────┬────────┬─────────────────────────┐
//! │ len: u32  │ ver: u8  │ kind   │ payload (len − 2 bytes) │
//! │ LE        │ 1 or 2   │ u8     │ kind-specific, LE ints  │
//! └───────────┴──────────┴────────┴─────────────────────────┘
//! ```
//!
//! `len` counts everything after the prefix (version + kind + payload)
//! and is capped at [`MAX_FRAME_BYTES`]. Two protocol versions share
//! the framing and negotiate per frame — the server answers each frame
//! in the version it arrived in, so v1 and v2 peers coexist on one
//! frontend. v1 frame kinds: `Hello` (tenant id and credential, binds a
//! connection to a tenant), `Request` (one [`Query`](crate::Query)),
//! `Answer` (ticket plus [`Answer`](crate::Answer)), `Error` (optional
//! ticket plus [`ServeError`](crate::ServeError)). v2 widens `Hello`
//! with a session id and keys `Request`/`Answer`/`Error` by
//! client-chosen correlation ids — the basis of reconnect-with-resume
//! and idempotent resubmission. Kinds 5–7 (`Ping`/`Pong`/`Goaway`, the
//! connection-lifecycle frames) are version-neutral. The full per-kind
//! payload layout is documented in [`codec`].
//!
//! Decoding is *total*: any byte sequence either yields a frame or a
//! typed [`crate::ServeError::MalformedFrame`] /
//! [`crate::ServeError::ProtocolVersion`] — the server answers bad frames
//! with an error frame instead of dropping bytes or killing the parse
//! loop. An incomplete frame is simply not ready yet ([`FrameBuf`] waits
//! for more bytes).
//!
//! ## Transports
//!
//! [`Transport`] is the narrow byte-pipe contract ([`Transport::send`] /
//! [`Transport::recv`], both non-blocking). Two implementations ship:
//! [`LoopbackTransport`] (paired in-process byte channels — what tests,
//! benches, and CI use, so nothing here depends on sandbox networking)
//! and [`TcpTransport`] (a non-blocking `std::net::TcpStream`; compiled
//! always, exercised only where a real network exists — CI runs
//! loopback-only). [`Connector`] is the dial-side counterpart a
//! [`WireClient`] reconnects through; [`loopback_listener`] pairs a
//! [`LoopbackConnector`] with a [`LoopbackListener`] backlog.
//!
//! ## The frontend
//!
//! [`Frontend`] owns the [`StreamingServer`](crate::StreamingServer) and
//! any number of connections. Each [`Frontend::pump`] ingests every
//! connection's bytes, decodes and handles the frames (charging
//! [`wec_asym::FRAME_DECODE_OPS`] per frame on the pumping ledger),
//! dispatches at most one micro-batch, and writes out every deliverable
//! answer as a frame ([`wec_asym::FRAME_ENCODE_OPS`] each). Connection
//! windows map per-connection backpressure onto the admission queue: a
//! connection with `window` requests in flight gets a typed `Overloaded`
//! error frame for the overflow request — never a dropped byte — while
//! other connections keep submitting. [`LifecyclePolicy`] adds opt-in
//! idle deadlines with `Ping`/`Pong` keepalive, malformed-frame strike
//! escalation, bounded per-connection send buffers with slow-client
//! backpressure, and per-session dedup windows;
//! [`Frontend::begin_shutdown`] / [`Frontend::shutdown`] implement
//! `Goaway`-announced graceful drain. See [`frontend`] for the exact
//! charge and windowing contract.
//!
//! ## Chaos
//!
//! [`WireFaultPlan`] + [`ChaosTransport`] inject byte-level faults —
//! short reads/writes, mid-frame disconnects, stall ticks, duplicated
//! delivery — as pure functions of `(seed, connection, byte offset)`:
//! bit-reproducible across runs and thread counts, CI-matrixable like
//! the shard-level [`FaultPlan`](crate::FaultPlan). The zero-knob plan
//! injects nothing and is behavior-identical to the bare transport. See
//! [`chaos`].
pub mod chaos;
pub mod client;
pub mod codec;
pub mod frontend;
pub mod transport;

pub use chaos::{ChaosConnector, ChaosStats, ChaosTransport, WireFaultPlan};
pub use client::{ClientStats, RetryPolicy, WireClient};
pub use codec::{
    encode_frame, frame_version, Frame, FrameBuf, GoawayReason, WireFault, MAX_FRAME_BYTES,
    WIRE_VERSION, WIRE_VERSION_2,
};
pub use frontend::{ConnId, Frontend, FrontendStats, LifecyclePolicy, PumpReport};
pub use transport::{
    loopback_listener, loopback_pair, Connector, LoopbackConnector, LoopbackListener,
    LoopbackTransport, TcpTransport, Transport, TransportError,
};
