//! The byte-protocol front end: a length-prefixed binary wire format for
//! queries, answers, typed errors, and tenant credentials, behind a
//! swappable [`Transport`] trait, with a [`Frontend`] that owns a
//! [`StreamingServer`](crate::StreamingServer) and serves connections.
//!
//! ## Frame layout
//!
//! Every frame is one length-prefixed record:
//!
//! ```text
//! ┌───────────┬──────────┬────────┬─────────────────────────┐
//! │ len: u32  │ ver: u8  │ kind   │ payload (len − 2 bytes) │
//! │ LE        │ = 1      │ u8     │ kind-specific, LE ints  │
//! └───────────┴──────────┴────────┴─────────────────────────┘
//! ```
//!
//! `len` counts everything after the prefix (version + kind + payload)
//! and is capped at [`MAX_FRAME_BYTES`]. Frame kinds: `Hello` (tenant
//! id and credential, binds a connection to a tenant), `Request` (one
//! [`Query`](crate::Query)), `Answer` (ticket plus
//! [`Answer`](crate::Answer)), `Error` (optional ticket plus
//! [`ServeError`](crate::ServeError)). The full per-kind payload layout
//! is documented in [`codec`].
//!
//! Decoding is *total*: any byte sequence either yields a frame or a
//! typed [`crate::ServeError::MalformedFrame`] /
//! [`crate::ServeError::ProtocolVersion`] — the server answers bad frames
//! with an error frame instead of dropping bytes or killing the parse
//! loop. An incomplete frame is simply not ready yet ([`FrameBuf`] waits
//! for more bytes).
//!
//! ## Transports
//!
//! [`Transport`] is the narrow byte-pipe contract ([`Transport::send`] /
//! [`Transport::recv`], both non-blocking). Two implementations ship:
//! [`LoopbackTransport`] (paired in-process byte channels — what tests,
//! benches, and CI use, so nothing here depends on sandbox networking)
//! and [`TcpTransport`] (a non-blocking `std::net::TcpStream`; compiled
//! always, exercised only where a real network exists — CI runs
//! loopback-only).
//!
//! ## The frontend
//!
//! [`Frontend`] owns the [`StreamingServer`](crate::StreamingServer) and
//! any number of connections. Each [`Frontend::pump`] ingests every
//! connection's bytes, decodes and handles the frames (charging
//! [`wec_asym::FRAME_DECODE_OPS`] per frame on the pumping ledger),
//! dispatches at most one micro-batch, and writes out every deliverable
//! answer as a frame ([`wec_asym::FRAME_ENCODE_OPS`] each). Connection
//! windows map per-connection backpressure onto the admission queue: a
//! connection with `window` requests in flight gets a typed `Overloaded`
//! error frame for the overflow request — never a dropped byte — while
//! other connections keep submitting. See [`frontend`] for the exact
//! charge and windowing contract.

pub mod codec;
pub mod frontend;
pub mod transport;

pub use codec::{encode_frame, Frame, FrameBuf, WireFault, MAX_FRAME_BYTES, WIRE_VERSION};
pub use frontend::{ConnId, Frontend, FrontendStats, PumpReport};
pub use transport::{loopback_pair, LoopbackTransport, TcpTransport, Transport, TransportError};
