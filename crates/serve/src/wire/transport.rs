//! The swappable byte-pipe contract and the two shipped transports.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Why a transport operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is gone and every buffered byte has been drained; no
    /// further traffic is possible in this direction.
    Closed,
    /// Transient: the transport cannot accept the send *right now* and
    /// enqueued **nothing** — retry the whole buffer later. This is the
    /// slow-reader signal the frontend's bounded send buffers absorb; it
    /// never means data loss and never occurs mid-frame.
    Busy,
    /// An I/O error surfaced by the underlying stream.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Busy => write!(f, "transport busy (retry the send)"),
            TransportError::Io(kind) => write!(f, "transport i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A non-blocking, ordered, reliable byte pipe — the only thing the wire
/// layer asks of the outside world, which is what makes transports
/// swappable (in-process loopback in tests and CI, TCP where a network
/// exists, shared memory or anything else by implementing this trait).
///
/// Contract:
///
/// * [`Transport::send`] enqueues all of `bytes` or fails; no partial
///   sends are observable (an implementation may buffer internally). A
///   [`TransportError::Busy`] failure is transient — nothing was
///   enqueued, retry the same bytes later; every other failure is fatal
///   for the direction.
/// * [`Transport::recv`] copies up to `buf.len()` available bytes and
///   returns how many; `Ok(0)` means "nothing available right now",
///   never end-of-stream. A dead peer is [`TransportError::Closed`] —
///   raised only after every buffered byte has been handed over, so no
///   byte is ever dropped by the transport itself.
/// * Bytes arrive in send order, uncorrupted and unduplicated.
pub trait Transport: Send {
    /// Enqueue `bytes` toward the peer.
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError>;

    /// Copy up to `buf.len()` available bytes into `buf`; `Ok(0)` when
    /// nothing is available right now.
    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError>;
}

impl Transport for Box<dyn Transport> {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        (**self).send(bytes)
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        (**self).recv(buf)
    }
}

/// One direction of a loopback pipe.
#[derive(Debug, Default)]
struct Half {
    q: Mutex<VecDeque<u8>>,
    open: AtomicBool,
}

/// In-process paired byte channels: [`loopback_pair`] returns two
/// connected ends; what one end sends the other receives. Dropping an
/// end closes the pipe — the survivor drains buffered bytes, then sees
/// [`TransportError::Closed`]. Usable anywhere (tests, benches, CI)
/// regardless of sandbox networking.
#[derive(Debug)]
pub struct LoopbackTransport {
    tx: Arc<Half>,
    rx: Arc<Half>,
}

/// Two connected [`LoopbackTransport`] ends.
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let a = Arc::new(Half {
        q: Mutex::new(VecDeque::new()),
        open: AtomicBool::new(true),
    });
    let b = Arc::new(Half {
        q: Mutex::new(VecDeque::new()),
        open: AtomicBool::new(true),
    });
    (
        LoopbackTransport {
            tx: Arc::clone(&a),
            rx: Arc::clone(&b),
        },
        LoopbackTransport { tx: b, rx: a },
    )
}

impl Transport for LoopbackTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if !self.tx.open.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        self.tx
            .q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend(bytes);
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        let mut q = self.rx.q.lock().unwrap_or_else(PoisonError::into_inner);
        let n = q.len().min(buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = q.pop_front().expect("n <= q.len()");
        }
        if n == 0 && !self.rx.open.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        Ok(n)
    }
}

impl Drop for LoopbackTransport {
    fn drop(&mut self) {
        // Close both directions: the peer's reads drain then see Closed,
        // and the peer's writes fail immediately.
        self.tx.open.store(false, Ordering::Release);
        self.rx.open.store(false, Ordering::Release);
    }
}

/// [`Transport`] over a non-blocking [`std::net::TcpStream`]. Compiled
/// unconditionally so the type is always available, but CI exercises the
/// wire stack over [`LoopbackTransport`] only — sandboxes need not grant
/// networking. `tests/wire.rs` gates its TCP leg behind `WEC_WIRE_TCP=1`.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connect to a listening peer.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpTransport> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Wrap an accepted stream. Sets `TCP_NODELAY` (frames are tiny and
    /// latency-bound) and non-blocking mode (the [`Transport`] contract).
    pub fn from_stream(stream: TcpStream) -> std::io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        let mut rest = bytes;
        while !rest.is_empty() {
            match self.stream.write(rest) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => rest = &rest[n..],
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if rest.len() == bytes.len() {
                        // Nothing written yet: report Busy so the caller
                        // can buffer the frame instead of spinning on a
                        // slow reader.
                        return Err(TransportError::Busy);
                    }
                    // Mid-frame: frames must not be torn, so wait it out
                    // (frames are tiny — this is rare and short).
                    std::thread::yield_now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::Io(e.kind())),
            }
        }
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        match self.stream.read(buf) {
            Ok(0) => Err(TransportError::Closed),
            Ok(n) => Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(TransportError::Io(e.kind())),
        }
    }
}

/// How a [`WireClient`](super::WireClient) obtains a fresh transport —
/// once at startup and again on every reconnect. Implementations carry
/// whatever addressing they need (a loopback backlog, a socket address,
/// a chaos plan wrapping another connector).
pub trait Connector {
    /// Dial a new connection. [`TransportError::Busy`] means "no
    /// connection available right now, try again later"; anything else
    /// is a failed dial (also retried, under backoff).
    fn dial(&mut self) -> Result<Box<dyn Transport>, TransportError>;
}

/// Server-side backlog of loopback connections a [`LoopbackConnector`]
/// has dialed. The serving loop accepts each end into a
/// [`Frontend`](super::Frontend) — the loopback analogue of a listening
/// socket, usable anywhere regardless of sandbox networking.
#[derive(Debug, Clone, Default)]
pub struct LoopbackListener {
    backlog: Arc<Mutex<VecDeque<LoopbackTransport>>>,
}

impl LoopbackListener {
    /// Pop the next dialed-but-unaccepted connection, if any.
    pub fn accept(&self) -> Option<LoopbackTransport> {
        self.backlog
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }
}

/// [`Connector`] producing in-process loopback connections; the peer
/// ends queue on the paired [`LoopbackListener`].
#[derive(Debug, Clone)]
pub struct LoopbackConnector {
    backlog: Arc<Mutex<VecDeque<LoopbackTransport>>>,
}

/// A paired loopback dialer and acceptor.
pub fn loopback_listener() -> (LoopbackConnector, LoopbackListener) {
    let listener = LoopbackListener::default();
    (
        LoopbackConnector {
            backlog: Arc::clone(&listener.backlog),
        },
        listener,
    )
}

impl Connector for LoopbackConnector {
    fn dial(&mut self) -> Result<Box<dyn Transport>, TransportError> {
        let (client, server) = loopback_pair();
        self.backlog
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(server);
        Ok(Box::new(client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trip_and_close() {
        let (mut a, mut b) = loopback_pair();
        a.send(b"hello").unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(b.recv(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b"hel");
        assert_eq!(b.recv(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"lo");
        assert_eq!(b.recv(&mut buf).unwrap(), 0, "drained but open");
        drop(a);
        assert_eq!(b.recv(&mut buf), Err(TransportError::Closed));
        assert_eq!(b.send(b"x"), Err(TransportError::Closed));
    }

    #[test]
    fn loopback_close_drains_buffered_bytes_first() {
        let (mut a, mut b) = loopback_pair();
        a.send(b"last words").unwrap();
        drop(a);
        let mut buf = [0u8; 64];
        let n = b.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"last words", "no byte dropped at close");
        assert_eq!(b.recv(&mut buf), Err(TransportError::Closed));
    }
}
