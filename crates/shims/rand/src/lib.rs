//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `SmallRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`.
//!
//! The build environment has no registry access, so the workspace vendors
//! this minimal implementation instead of the real crate. The generator is
//! xoshiro256++ seeded through SplitMix64 — a different stream than the
//! upstream `SmallRng`, which is explicitly *not* a stability promise of
//! rand either; everything in this repo treats seeds as opaque.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniform-samplable over a bounded range (via Lemire-style
/// rejection on the widened product).
pub trait UniformInt: Copy + PartialOrd {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Unbiased bounded sampling: rejection on the low product half.
        let mut m = (rng.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                m = (rng.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
    fn from_u64(x: u64) -> Self;
    fn to_u64(self) -> u64;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn from_u64(x: u64) -> Self { x as $t }
            #[inline]
            fn to_u64(self) -> u64 { self as u64 }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range called with empty range");
        T::from_u64(lo + T::sample_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range called with empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + T::sample_below(rng, span + 1))
    }
}

/// The user-facing sampling trait (blanket-implemented for every core rng).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64. Small, fast, and good
    /// enough for test-graph generation and randomized shifts.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates in-place shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on empty slices.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 1/2");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }
}
