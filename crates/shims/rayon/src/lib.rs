//! Offline stand-in for the subset of `rayon` this workspace uses:
//! [`join`] and [`current_num_threads`].
//!
//! The build environment has no registry access, so instead of depending on
//! the real work-stealing runtime this shim ships a small **persistent
//! worker pool**: `threads − 1` long-lived workers block on a shared job
//! queue, and [`join`] publishes its left branch as a *stack job* — a
//! type-erased pointer to a frame on the caller's stack — then runs the
//! right branch inline. When the caller finishes first and the job is still
//! queued, it **reclaims** the job under the queue lock and runs it inline;
//! otherwise it parks until the executing worker signals completion. Either
//! way the job's memory outlives every reference to it, which is what makes
//! the raw-pointer hand-off sound.
//!
//! A global token counter (initialized to `threads − 1`, the worker count)
//! bounds the number of *outstanding* published jobs, so nested joins
//! degrade gracefully to inline execution instead of flooding the queue,
//! and the queue never holds more jobs than there are workers to take them.
//! Compared to the previous scoped-thread-per-`join` design this removes
//! the thread-spawn cost from every parallel fork, which is what makes
//! grain-1 fan-outs (batch serving shards, secondary planting) affordable.
//!
//! Thread count resolution: the `WEC_THREADS` environment variable if set,
//! otherwise [`std::thread::available_parallelism`]. With one thread the
//! pool spawns no workers and every `join` runs inline.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

static TOKENS: OnceLock<AtomicIsize> = OnceLock::new();

fn tokens() -> &'static AtomicIsize {
    TOKENS.get_or_init(|| AtomicIsize::new(current_num_threads() as isize - 1))
}

/// The number of worker threads `join` may use in total (including the
/// calling thread).
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(s) = std::env::var("WEC_THREADS") {
            if let Ok(n) = s.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn try_acquire() -> bool {
    let t = tokens();
    let mut cur = t.load(Ordering::Relaxed);
    while cur > 0 {
        match t.compare_exchange_weak(cur, cur - 1, Ordering::Acquire, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(c) => cur = c,
        }
    }
    false
}

/// Returns the held token on drop, so a panic unwinding out of a branch
/// cannot permanently shrink the pool.
struct TokenGuard;

impl Drop for TokenGuard {
    fn drop(&mut self) {
        tokens().fetch_add(1, Ordering::Release);
    }
}

/// A type-erased pointer to a [`StackJob`] on some caller's stack. The
/// publishing `join` guarantees the frame stays alive until the job is
/// either reclaimed or marked done, so shipping the raw pointer to a worker
/// is sound.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// Safety: the pointee is a StackJob whose shared fields are only touched by
// the single party that dequeued (or reclaimed) the job, serialized by the
// queue mutex; completion is published through an Acquire/Release flag.
unsafe impl Send for JobRef {}

/// The left branch of a [`join`], living on the joiner's stack while a
/// worker (or the joiner itself, on reclaim) executes it.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    done: AtomicBool,
    owner: thread::Thread,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
            owner: thread::current(),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::execute,
        }
    }

    /// Run the job and publish its result. Called exactly once, by whoever
    /// ended up owning the job (a worker or the reclaiming joiner).
    unsafe fn execute(data: *const ()) {
        let job = &*(data as *const Self);
        let func = (*job.func.get()).take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        *job.result.get() = Some(result);
        // The joiner may observe `done` and tear down the frame immediately
        // (its wait loop polls the flag), so the store must be the last
        // touch of the job's memory: unpark through a clone of the handle.
        let owner = job.owner.clone();
        job.done.store(true, Ordering::Release);
        owner.unpark();
    }

    /// Block until a worker finishes the job: brief spin, then park (the
    /// executor unparks the owner after setting the flag; the timeout only
    /// guards against unpark races with unrelated wakeups).
    fn wait_done(&self) {
        let mut spins = 0u32;
        while !self.done.load(Ordering::Acquire) {
            if spins < 128 {
                std::hint::spin_loop();
                spins += 1;
            } else {
                thread::park_timeout(Duration::from_micros(100));
            }
        }
    }

    /// The published result; propagates the job's panic. Only valid after
    /// `execute` happened-before this call.
    fn into_result(self) -> R {
        match self.result.into_inner() {
            Some(Ok(r)) => r,
            Some(Err(payload)) => panic::resume_unwind(payload),
            None => unreachable!("job settled without a result"),
        }
    }
}

/// The shared queue the persistent workers serve.
struct Pool {
    queue: Mutex<VecDeque<JobRef>>,
    available: Condvar,
}

impl Pool {
    fn push(&self, job: JobRef) {
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }

    /// Remove `data`'s job from the queue if no worker has taken it yet.
    fn try_reclaim(&self, data: *const ()) -> bool {
        let mut q = self.queue.lock().unwrap();
        if let Some(pos) = q.iter().position(|j| std::ptr::eq(j.data, data)) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(j) = q.pop_front() {
                        break j;
                    }
                    q = self.available.wait(q).unwrap();
                }
            };
            // The job catches its own panics, so the worker survives them.
            unsafe { (job.exec)(job.data) };
        }
    }
}

/// The process-wide pool: `threads − 1` detached workers, spawned on first
/// use. `None` when the configuration is single-threaded.
fn pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<&'static Pool>> = OnceLock::new();
    *POOL.get_or_init(|| {
        let workers = current_num_threads().saturating_sub(1);
        if workers == 0 {
            return None;
        }
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..workers {
            thread::Builder::new()
                .name(format!("wec-rayon-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("spawning pool worker");
        }
        Some(pool)
    })
}

/// Run both closures, potentially in parallel, and return both results.
///
/// Matches `rayon::join`'s contract: `oper_a` and `oper_b` may run on
/// different threads; panics propagate to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let Some(pool) = pool() else {
        return (oper_a(), oper_b());
    };
    if !try_acquire() {
        return (oper_a(), oper_b());
    }
    let _token = TokenGuard;
    let job = StackJob::new(oper_a);
    pool.push(job.as_job_ref());
    // Run the right branch inline; even if it panics, the left job must be
    // settled (reclaimed or awaited) before this frame unwinds, because a
    // worker may hold a pointer into it.
    let rb = panic::catch_unwind(AssertUnwindSafe(oper_b));
    let job_data = job.as_job_ref().data;
    if pool.try_reclaim(job_data) {
        match rb {
            // Nobody else references the job: run it inline.
            Ok(rb) => {
                unsafe { StackJob::<A, RA>::execute(job_data) };
                (job.into_result(), rb)
            }
            // The right branch panicked; drop the never-run left branch.
            Err(payload) => panic::resume_unwind(payload),
        }
    } else {
        job.wait_done();
        match rb {
            Ok(rb) => (job.into_result(), rb),
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn join_returns_both_results_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn deep_nesting_does_not_explode() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
            a + b
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn tokens_are_returned_after_use() {
        // Run enough joins that leaked tokens would exhaust the pool and
        // serialize everything — then confirm side effects still happen on
        // both branches.
        let hits = AtomicUsize::new(0);
        for _ in 0..256 {
            join(
                || hits.fetch_add(1, Ordering::Relaxed),
                || hits.fetch_add(1, Ordering::Relaxed),
            );
        }
        assert_eq!(hits.load(Ordering::Relaxed), 512);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        // Exercise both the published and inline paths; either must
        // propagate.
        let _ = join(|| panic!("boom"), || 0);
    }

    #[test]
    #[should_panic(expected = "right boom")]
    fn right_branch_panics_propagate() {
        let _ = join(|| 7, || panic!("right boom"));
    }

    #[test]
    fn tokens_survive_panicking_branches() {
        let before = tokens().load(Ordering::Relaxed);
        for _ in 0..32 {
            let _ = std::panic::catch_unwind(|| join(|| panic!("x"), || 0));
            let _ = std::panic::catch_unwind(|| join(|| 0, || panic!("y")));
        }
        // Every token taken by a panicking join must have been returned
        // (other tests may hold tokens concurrently, so allow >=).
        assert!(
            tokens().load(Ordering::Relaxed) >= before,
            "panicking joins leaked parallelism tokens"
        );
    }

    #[test]
    fn workers_persist_across_many_joins() {
        // With the persistent pool, repeated joins must not accumulate OS
        // threads: every parallel branch runs on one of the fixed workers
        // (named wec-rayon-*) or inline. Exercised indirectly: a burst of
        // joins after the pool warmed up still completes and returns
        // correct results.
        let total: u64 = (0..512u64)
            .map(|i| {
                let (a, b) = join(move || i, move || i * 2);
                a + b
            })
            .sum();
        assert_eq!(total, 3 * 511 * 512 / 2);
    }

    #[test]
    fn branches_run_only_inline_or_on_pool_workers() {
        // A published left branch must execute either on the joining thread
        // itself (inline / reclaimed) or on one of the named persistent
        // workers — never on an ad-hoc spawned thread. This is the
        // observable difference between the persistent pool and the old
        // scoped-thread-per-join design.
        let caller = thread::current().id();
        for _ in 0..256 {
            let ((id, name), ()) = join(
                || {
                    let t = thread::current();
                    (t.id(), t.name().unwrap_or("").to_string())
                },
                std::thread::yield_now,
            );
            assert!(
                id == caller || name.starts_with("wec-rayon-"),
                "left branch ran on unexpected thread {name:?}"
            );
        }
    }
}
