//! Offline stand-in for the subset of `rayon` this workspace uses:
//! [`join`] and [`current_num_threads`] — now backed by a real
//! **work-stealing runtime** instead of a single mutex-guarded job queue.
//!
//! # Architecture
//!
//! The pool spawns `threads − 1` persistent workers. Each worker owns a
//! fixed-capacity **Chase–Lev deque** of type-erased job pointers:
//!
//! * the owner pushes and pops at the **bottom** (LIFO, plain loads/stores
//!   plus one fence — no locks, no CAS on the fast path);
//! * thieves steal from the **top** (FIFO — the oldest, usually largest,
//!   task) with a single compare-exchange;
//! * the buffer is circular with a power-of-two capacity
//!   ([`DEQUE_CAPACITY`]); indices grow monotonically and wrap through a
//!   mask, and a full deque rejects the push rather than reallocating.
//!
//! [`join`] publishes its **right** branch: a worker thread pushes it onto
//! its own deque (the lock-free fork path); a non-worker thread — or any
//! thread whose deque is full — falls back to the **injector**, the old
//! shared `Mutex<VecDeque>` which survives only as the overflow /
//! external-submission channel. The caller then runs the left branch
//! inline and settles the published job:
//!
//! * **reclaim** — if nobody took the job, a deque `pop` (or an injector
//!   scan) removes it and the caller runs it inline. The LIFO discipline
//!   guarantees the bottom of the caller's deque is its own most recent
//!   unsettled job, so the pop can only ever return that job;
//! * **wait** — if a thief got there first, the caller spins briefly and
//!   then parks; the executing thread unparks it when the result lands.
//!
//! Idle workers look for work in a fixed order — own deque, injector, then
//! **steal attempts against randomly probed victims** (xorshift-seeded per
//! worker) with exponentially growing spin backoff between rounds — and
//! finally park on a condvar. Publishing notifies sleepers only when the
//! sleeper count is nonzero; the sequentially consistent publish → counter
//! handshake (plus the sleeper's pre-park rescan under the sleep lock)
//! rules out lost wakeups, and a long defensive park timeout keeps an idle
//! pool essentially free of CPU burn while still bounding the damage of
//! any platform condvar quirk.
//!
//! Either way a published job's stack frame outlives every reference to it
//! (the joiner settles the job — reclaimed, or executed remotely and
//! awaited — before its frame unwinds, panics included), which is what
//! makes the raw-pointer hand-off sound. Panics from a stolen job are
//! caught by the job itself, shipped back through the result slot, and
//! re-thrown at the joiner; workers survive them.
//!
//! Thread count resolution: the `WEC_THREADS` environment variable if set
//! (**must** be a positive integer — `0` or garbage aborts with a clear
//! message instead of silently falling back), otherwise
//! [`std::thread::available_parallelism`]. With one thread the pool spawns
//! no workers and every `join` runs inline.
//!
//! Scheduler observability: [`scheduler_stats`] exposes monotonic counters
//! (publishes by channel, steals, reclaims, blocked joins, parks) that the
//! `pool_bench` harness uses to report steal rates, and
//! [`force_injector_only`] routes every publish through the injector so the
//! old shared-queue scheduler can be measured against this one in the same
//! process.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{
    fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// Capacity of each worker's deque (power of two). 256 outstanding forks
/// per worker is far beyond the `O(log n)` a balanced fork tree keeps live;
/// deeper left-leaning recursions overflow gracefully into the injector.
pub const DEQUE_CAPACITY: usize = 256;

/// The number of threads `join` may use in total (including the calling
/// thread): `WEC_THREADS` if set, else the machine's available parallelism.
///
/// # Panics
/// If `WEC_THREADS` is set to zero or to anything that does not parse as a
/// positive integer.
///
/// ```
/// assert!(rayon::current_num_threads() >= 1);
/// ```
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| match std::env::var("WEC_THREADS") {
        Ok(raw) => parse_wec_threads(&raw),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    })
}

/// Parse a `WEC_THREADS` value, rejecting zero and garbage loudly: a typo'd
/// thread count silently degrading to `available_parallelism` produced
/// benchmarks that measured the wrong machine.
fn parse_wec_threads(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => panic!(
            "WEC_THREADS must be a positive integer (e.g. WEC_THREADS=8), got {raw:?}; \
             unset it to use the machine's available parallelism"
        ),
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a [`StackJob`] on some caller's stack. The
/// publishing `join` guarantees the frame stays alive until the job is
/// either reclaimed or marked done, so shipping the raw pointer through a
/// deque or the injector is sound.
#[derive(Clone, Copy, Debug)]
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// Safety: the pointee is a StackJob executed exactly once by whichever
// party removed the job from its queue (deque pop/steal are linearizable,
// the injector is mutex-guarded); completion is published through an
// Acquire/Release flag.
unsafe impl Send for JobRef {}

/// The right branch of a [`join`], living on the joiner's stack while a
/// worker (or the joiner itself, on reclaim) executes it.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    done: AtomicBool,
    owner: thread::Thread,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
            owner: thread::current(),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::execute,
        }
    }

    /// Run the job and publish its result. Called exactly once, by whoever
    /// ended up owning the job (a thief or the reclaiming joiner).
    unsafe fn execute(data: *const ()) {
        let job = &*(data as *const Self);
        let func = (*job.func.get()).take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        if result.is_err() {
            // The worker survives; the panic ships back through the result
            // slot and re-raises in the joiner (`into_result`).
            stats().caught_panics.fetch_add(1, Ordering::Relaxed);
        }
        *job.result.get() = Some(result);
        // The joiner may observe `done` and tear down the frame immediately
        // (its wait loop polls the flag), so the store must be the last
        // touch of the job's memory: unpark through a clone of the handle.
        let owner = job.owner.clone();
        job.done.store(true, Ordering::Release);
        owner.unpark();
    }

    /// Block until a thief finishes the job: brief spin, then park (the
    /// executor unparks the owner after setting the flag; the timeout only
    /// guards against unpark races with unrelated wakeups).
    fn wait_done(&self) {
        let mut spins = 0u32;
        while !self.done.load(Ordering::Acquire) {
            if spins < 128 {
                std::hint::spin_loop();
                spins += 1;
            } else {
                thread::park_timeout(Duration::from_micros(100));
            }
        }
    }

    /// The published result; propagates the job's panic. Only valid after
    /// `execute` happened-before this call.
    fn into_result(self) -> R {
        match self.result.into_inner() {
            Some(Ok(r)) => r,
            Some(Err(payload)) => panic::resume_unwind(payload),
            None => unreachable!("job settled without a result"),
        }
    }
}

// ---------------------------------------------------------------------------
// Chase–Lev deque
// ---------------------------------------------------------------------------

/// One circular-buffer slot. A `JobRef` is two words, stored as two
/// independent relaxed atomics: a thief's speculative read of a slot that
/// the owner is concurrently recycling (possible only after other thieves
/// advanced `top` past it, i.e. only when the thief's subsequent `top` CAS
/// is guaranteed to fail and the value is discarded) is then an ordinary
/// atomic race, not UB. A *successful* CAS proves `top` never moved between
/// the reads and the claim, so no recycling push (which requires `top` to
/// have advanced to reuse the aliased index) can have interleaved: the two
/// words are consistent and belong to the claimed job.
struct Slot {
    data: AtomicPtr<()>,
    exec: AtomicPtr<()>,
}

/// A fixed-capacity Chase–Lev work-stealing deque (Chase & Lev, SPAA'05;
/// orderings after Lê et al., PPoPP'13). The owner pushes/pops at `bottom`;
/// thieves CAS `top` upward. Indices grow monotonically and are reduced
/// into the circular buffer by a power-of-two mask, so "wraparound" is pure
/// index arithmetic — slot `i` and slot `i + DEQUE_CAPACITY` alias, which
/// the `bottom − top ≤ capacity` invariant makes safe.
struct Deque {
    bottom: AtomicIsize,
    top: AtomicIsize,
    slots: Box<[Slot]>,
}

impl Deque {
    fn new() -> Self {
        Deque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            slots: (0..DEQUE_CAPACITY)
                .map(|_| Slot {
                    data: AtomicPtr::new(std::ptr::null_mut()),
                    exec: AtomicPtr::new(std::ptr::null_mut()),
                })
                .collect(),
        }
    }

    #[inline]
    fn slot(&self, i: isize) -> &Slot {
        &self.slots[(i as usize) & (DEQUE_CAPACITY - 1)]
    }

    #[inline]
    fn write_slot(&self, i: isize, job: JobRef) {
        let s = self.slot(i);
        s.data.store(job.data.cast_mut(), Ordering::Relaxed);
        s.exec
            .store(job.exec as usize as *mut (), Ordering::Relaxed);
    }

    #[inline]
    fn read_slot(&self, i: isize) -> JobRef {
        let s = self.slot(i);
        let data = s.data.load(Ordering::Relaxed) as *const ();
        let exec_raw = s.exec.load(Ordering::Relaxed);
        // Safety: every non-null value stored in `exec` came from an
        // `unsafe fn(*const ())` pointer in `write_slot`; callers only use
        // the result after the index claim (pop / successful steal CAS)
        // proves the pair is a valid published job.
        let exec = unsafe { std::mem::transmute::<*mut (), unsafe fn(*const ())>(exec_raw) };
        JobRef { data, exec }
    }

    /// Owner-only: push at the bottom. Fails (returning the job) when the
    /// deque holds `DEQUE_CAPACITY` unsettled jobs.
    fn push(&self, job: JobRef) -> Result<(), JobRef> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= DEQUE_CAPACITY as isize {
            return Err(job);
        }
        self.write_slot(b, job);
        // SeqCst publish: pairs with the SeqCst fences in pop/steal and
        // with the sleeper protocol's sequentially consistent handshake.
        self.bottom.store(b.wrapping_add(1), Ordering::SeqCst);
        Ok(())
    }

    /// Owner-only: pop at the bottom (the most recently pushed job).
    fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = self.read_slot(b);
            if t == b {
                // Last element: race the thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                won.then_some(job)
            } else {
                Some(job)
            }
        } else {
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            None
        }
    }

    /// Any thread: steal from the top (the oldest job). Returns `None` both
    /// when empty and when it lost a race — callers treat either as a
    /// failed probe and move on. The slot read is speculative (see [`Slot`]);
    /// the CAS validates it.
    fn steal(&self) -> Option<JobRef> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let job = self.read_slot(t);
            if self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(job);
            }
        }
        None
    }

    /// Racy emptiness hint for the sleeper's pre-park scan.
    fn maybe_nonempty(&self) -> bool {
        self.top.load(Ordering::SeqCst) < self.bottom.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Scheduler statistics
// ---------------------------------------------------------------------------

/// Monotonic scheduler counters since process start, for steal-rate
/// reporting (`pool_bench`) and scheduler tests. Snapshot via
/// [`scheduler_stats`]; subtract two snapshots for a per-phase delta.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs pushed onto a worker's own deque (the lock-free fork path).
    pub published_deque: u64,
    /// Jobs pushed onto the shared injector (external threads, overflow,
    /// or [`force_injector_only`] mode).
    pub published_injector: u64,
    /// Deque pushes rejected at capacity and rerouted to the injector.
    pub deque_overflows: u64,
    /// Successful steals from another worker's deque.
    pub steals: u64,
    /// Published jobs reclaimed by their joiner via deque pop.
    pub pop_reclaims: u64,
    /// Published jobs reclaimed by their joiner out of the injector.
    pub injector_reclaims: u64,
    /// Joins that had to block on a remotely executing branch.
    pub blocked_joins: u64,
    /// Times an idle worker gave up stealing and parked.
    pub parks: u64,
    /// Panics caught at a scheduler isolation boundary (a job body or an
    /// inline join branch) and held for re-raise in the joiner — the
    /// worker itself always survives.
    pub caught_panics: u64,
}

impl SchedulerStats {
    /// Counter-wise difference `self − earlier` (both from
    /// [`scheduler_stats`], `self` taken later).
    pub fn since(&self, earlier: &SchedulerStats) -> SchedulerStats {
        SchedulerStats {
            published_deque: self.published_deque - earlier.published_deque,
            published_injector: self.published_injector - earlier.published_injector,
            deque_overflows: self.deque_overflows - earlier.deque_overflows,
            steals: self.steals - earlier.steals,
            pop_reclaims: self.pop_reclaims - earlier.pop_reclaims,
            injector_reclaims: self.injector_reclaims - earlier.injector_reclaims,
            blocked_joins: self.blocked_joins - earlier.blocked_joins,
            parks: self.parks - earlier.parks,
            caught_panics: self.caught_panics - earlier.caught_panics,
        }
    }
}

/// Counter cells, cache-line padded so stripes never share a line: stats
/// bumps sit on the lock-free fork fast path and must not reintroduce the
/// cross-core cacheline ping-pong the deques removed.
#[repr(align(128))]
struct StatCells {
    published_deque: AtomicU64,
    published_injector: AtomicU64,
    deque_overflows: AtomicU64,
    steals: AtomicU64,
    pop_reclaims: AtomicU64,
    injector_reclaims: AtomicU64,
    blocked_joins: AtomicU64,
    parks: AtomicU64,
    caught_panics: AtomicU64,
}

/// Stripes: workers hash onto 1..STAT_STRIPES by index, external threads
/// share stripe 0 (they publish through the injector mutex anyway, so one
/// more shared line is not the bottleneck there).
const STAT_STRIPES: usize = 16;

#[allow(clippy::declare_interior_mutable_const)] // template for the static array below
const STAT_CELLS_ZERO: StatCells = StatCells {
    published_deque: AtomicU64::new(0),
    published_injector: AtomicU64::new(0),
    deque_overflows: AtomicU64::new(0),
    steals: AtomicU64::new(0),
    pop_reclaims: AtomicU64::new(0),
    injector_reclaims: AtomicU64::new(0),
    blocked_joins: AtomicU64::new(0),
    parks: AtomicU64::new(0),
    caught_panics: AtomicU64::new(0),
};

static STATS: [StatCells; STAT_STRIPES] = [STAT_CELLS_ZERO; STAT_STRIPES];

/// This thread's counter stripe.
#[inline]
fn stats() -> &'static StatCells {
    let idx = WORKER
        .with(Cell::get)
        .map_or(0, |w| w % (STAT_STRIPES - 1) + 1);
    &STATS[idx]
}

/// Snapshot the process-wide scheduler counters (sum over all stripes).
pub fn scheduler_stats() -> SchedulerStats {
    let mut s = SchedulerStats::default();
    for cell in &STATS {
        s.published_deque += cell.published_deque.load(Ordering::Relaxed);
        s.published_injector += cell.published_injector.load(Ordering::Relaxed);
        s.deque_overflows += cell.deque_overflows.load(Ordering::Relaxed);
        s.steals += cell.steals.load(Ordering::Relaxed);
        s.pop_reclaims += cell.pop_reclaims.load(Ordering::Relaxed);
        s.injector_reclaims += cell.injector_reclaims.load(Ordering::Relaxed);
        s.blocked_joins += cell.blocked_joins.load(Ordering::Relaxed);
        s.parks += cell.parks.load(Ordering::Relaxed);
        s.caught_panics += cell.caught_panics.load(Ordering::Relaxed);
    }
    s
}

static INJECTOR_ONLY: AtomicBool = AtomicBool::new(false);

/// Diagnostic / benchmarking knob: while `true`, every `join` publishes
/// through the shared injector queue instead of the caller's deque,
/// reproducing the pre-work-stealing scheduler so `pool_bench` can measure
/// both in one process. Workers still drain the injector either way.
pub fn force_injector_only(on: bool) {
    INJECTOR_ONLY.store(on, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// Where a `join` parked its right branch, so settle knows where to look.
enum Placement {
    Deque(usize),
    Injector,
}

struct Pool {
    /// One Chase–Lev deque per worker; `deques[i]` is owned by worker `i`.
    deques: Box<[Deque]>,
    /// Overflow / external-submission channel (and the whole scheduler in
    /// [`force_injector_only`] mode).
    injector: Mutex<VecDeque<JobRef>>,
    /// Sleeper handshake: `sleepers` counts workers inside the pre-park
    /// window; publishers lock `sleep` and signal `wake` only when it is
    /// nonzero, and the sleeper holds `sleep` from its final queue scan
    /// through the wait, so a concurrent notify cannot slip between them.
    sleepers: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
}

thread_local! {
    /// This thread's worker index, when it is a pool worker.
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

impl Pool {
    /// Publish a job: caller's own deque when the caller is a worker (the
    /// lock-free path), the injector otherwise — or on overflow, or in
    /// [`force_injector_only`] mode.
    fn publish(&self, job: JobRef) -> Placement {
        if !INJECTOR_ONLY.load(Ordering::Relaxed) {
            if let Some(w) = WORKER.with(Cell::get) {
                match self.deques[w].push(job) {
                    Ok(()) => {
                        stats().published_deque.fetch_add(1, Ordering::Relaxed);
                        self.notify();
                        return Placement::Deque(w);
                    }
                    Err(_) => {
                        stats().deque_overflows.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.injector.lock().unwrap().push_back(job);
        stats().published_injector.fetch_add(1, Ordering::Relaxed);
        self.notify();
        Placement::Injector
    }

    /// Wake one parked worker if any might be parked.
    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep.lock().unwrap();
            self.wake.notify_one();
        }
    }

    fn pop_injector(&self) -> Option<JobRef> {
        self.injector.lock().unwrap().pop_front()
    }

    /// Remove `data`'s job from the injector if no worker has taken it yet.
    fn try_reclaim_injector(&self, data: *const ()) -> bool {
        let mut q = self.injector.lock().unwrap();
        if let Some(pos) = q.iter().position(|j| std::ptr::eq(j.data, data)) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    /// One full work-finding pass for worker `me`: own deque (LIFO), then
    /// the injector, then several rounds of random-victim steal probes with
    /// exponentially growing spin backoff between rounds.
    fn find_work(&self, me: usize, rng: &mut Xorshift) -> Option<JobRef> {
        if let Some(job) = self.deques[me].pop() {
            return Some(job);
        }
        if let Some(job) = self.pop_injector() {
            return Some(job);
        }
        let n = self.deques.len();
        let mut backoff_spins = 32u32;
        for _round in 0..4 {
            for _probe in 0..(2 * n) {
                let victim = (rng.next() as usize) % n;
                if victim != me {
                    if let Some(job) = self.deques[victim].steal() {
                        stats().steals.fetch_add(1, Ordering::Relaxed);
                        return Some(job);
                    }
                }
            }
            if let Some(job) = self.pop_injector() {
                return Some(job);
            }
            for _ in 0..backoff_spins {
                std::hint::spin_loop();
            }
            backoff_spins = (backoff_spins * 2).min(4096);
        }
        None
    }

    /// Racy scan used by the sleeper just before parking.
    fn work_might_exist(&self) -> bool {
        self.deques.iter().any(Deque::maybe_nonempty) || !self.injector.lock().unwrap().is_empty()
    }

    /// Park until notified. The publish/park handshake (see module docs)
    /// makes the wakeup reliable; the long timeout is purely defensive and
    /// keeps idle workers at ~10 wakeups/s instead of busy-polling.
    fn sleep(&self) {
        let guard = self.sleep.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.work_might_exist() {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        stats().parks.fetch_add(1, Ordering::Relaxed);
        let (guard, _) = self
            .wake
            .wait_timeout(guard, Duration::from_millis(100))
            .unwrap();
        drop(guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    fn worker_loop(&self, me: usize) {
        WORKER.with(|w| w.set(Some(me)));
        let mut rng = Xorshift::new(0x9e37_79b9 ^ (me as u64 + 1));
        loop {
            match self.find_work(me, &mut rng) {
                // The job catches its own panics, so the worker survives.
                Some(job) => unsafe { (job.exec)(job.data) },
                None => self.sleep(),
            }
        }
    }
}

/// Deterministically seeded xorshift64* for steal-victim probing. Victim
/// choice only perturbs execution order, never accounting, so a fixed seed
/// per worker is fine (and keeps runs reproducible-ish for debugging).
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Xorshift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// The process-wide pool: `threads − 1` detached workers, spawned on first
/// use. `None` when the configuration is single-threaded.
fn pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<&'static Pool>> = OnceLock::new();
    *POOL.get_or_init(|| {
        let workers = current_num_threads().saturating_sub(1);
        if workers == 0 {
            return None;
        }
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            deques: (0..workers).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        }));
        for i in 0..workers {
            thread::Builder::new()
                .name(format!("wec-rayon-{i}"))
                .spawn(move || pool.worker_loop(i))
                .expect("spawning pool worker");
        }
        Some(pool)
    })
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Run both closures, potentially in parallel, and return both results.
///
/// Matches `rayon::join`'s contract: `oper_a` and `oper_b` may run on
/// different threads; panics propagate to the caller. The right branch is
/// the one published for stealing (pushed onto the calling worker's deque,
/// or the injector from non-worker threads); the left branch runs inline.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let Some(pool) = pool() else {
        return (oper_a(), oper_b());
    };
    let job = StackJob::new(oper_b);
    let job_ref = job.as_job_ref();
    let placement = pool.publish(job_ref);
    // Run the left branch inline; even if it panics, the published job must
    // be settled (reclaimed or awaited) before this frame unwinds, because
    // a thief may hold a pointer into it.
    let ra = panic::catch_unwind(AssertUnwindSafe(oper_a));
    if ra.is_err() {
        stats().caught_panics.fetch_add(1, Ordering::Relaxed);
    }
    let reclaimed = match placement {
        Placement::Deque(w) => match pool.deques[w].pop() {
            Some(popped) => {
                // Every job this thread pushed after ours was settled by
                // its own (nested, already returned) join, so the bottom of
                // our deque can only be our job.
                assert!(
                    std::ptr::eq(popped.data, job_ref.data),
                    "deque LIFO discipline violated: reclaimed a foreign job"
                );
                stats().pop_reclaims.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        },
        Placement::Injector => {
            let got = pool.try_reclaim_injector(job_ref.data);
            if got {
                stats().injector_reclaims.fetch_add(1, Ordering::Relaxed);
            }
            got
        }
    };
    if reclaimed {
        match ra {
            // Nobody else references the job: run it inline.
            Ok(ra) => {
                unsafe { StackJob::<B, RB>::execute(job_ref.data) };
                (ra, job.into_result())
            }
            // The left branch panicked; drop the never-run right branch.
            Err(payload) => panic::resume_unwind(payload),
        }
    } else {
        stats().blocked_joins.fetch_add(1, Ordering::Relaxed);
        job.wait_done();
        match ra {
            Ok(ra) => (ra, job.into_result()),
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Instant;

    /// Every test forces an 8-thread pool *before* first pool use, so the
    /// scheduler tests exercise real workers and steals even on a 1-core
    /// CI container. (Thread-count resolution is process-wide and
    /// latched on first use; the unit-test binary is its own process.)
    fn setup() {
        static INIT: std::sync::Once = std::sync::Once::new();
        INIT.call_once(|| std::env::set_var("WEC_THREADS", "8"));
        assert_eq!(current_num_threads(), 8, "another init won the race");
    }

    /// Serializes the tests that assert on the process-global scheduler
    /// counters or toggle [`force_injector_only`]: run concurrently they
    /// would perturb each other's stat deltas (the counters are global)
    /// and the injector-only window would suppress sibling tests' deque
    /// publishes.
    static STATS_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn stats_test_guard() -> std::sync::MutexGuard<'static, ()> {
        STATS_TEST_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    // -- WEC_THREADS parsing -------------------------------------------------

    #[test]
    fn wec_threads_parses_positive_integers() {
        assert_eq!(parse_wec_threads("1"), 1);
        assert_eq!(parse_wec_threads(" 16 "), 16);
    }

    #[test]
    #[should_panic(expected = "WEC_THREADS must be a positive integer")]
    fn wec_threads_rejects_zero() {
        parse_wec_threads("0");
    }

    #[test]
    #[should_panic(expected = "WEC_THREADS must be a positive integer")]
    fn wec_threads_rejects_garbage() {
        parse_wec_threads("eight");
    }

    #[test]
    #[should_panic(expected = "WEC_THREADS must be a positive integer")]
    fn wec_threads_rejects_negative() {
        parse_wec_threads("-2");
    }

    // -- deque unit tests ----------------------------------------------------

    fn dummy_job(tag: usize) -> JobRef {
        unsafe fn never_run(_: *const ()) {
            unreachable!("dummy job executed");
        }
        JobRef {
            data: tag as *const (),
            exec: never_run,
        }
    }

    #[test]
    fn deque_rejects_push_at_capacity_and_recovers() {
        let d = Deque::new();
        for i in 0..DEQUE_CAPACITY {
            assert!(d.push(dummy_job(i + 1)).is_ok(), "push {i}");
        }
        assert!(d.push(dummy_job(999)).is_err(), "capacity must reject");
        // Draining one slot makes room again.
        assert!(d.pop().is_some());
        assert!(d.push(dummy_job(1000)).is_ok());
    }

    #[test]
    fn deque_pop_is_lifo_and_steal_is_fifo() {
        let d = Deque::new();
        for i in 1..=4 {
            d.push(dummy_job(i)).unwrap();
        }
        assert_eq!(d.steal().unwrap().data as usize, 1, "steal takes oldest");
        assert_eq!(d.pop().unwrap().data as usize, 4, "pop takes newest");
        assert_eq!(d.steal().unwrap().data as usize, 2);
        assert_eq!(d.pop().unwrap().data as usize, 3);
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
    }

    #[test]
    fn deque_indices_wrap_around_capacity_many_times() {
        // Drive bottom/top 16 capacities past the buffer length so every
        // slot is reused through the mask, alternating pop- and steal-side
        // drains to move both indices.
        let d = Deque::new();
        let mut next_tag = 1usize;
        for round in 0..16 * DEQUE_CAPACITY {
            d.push(dummy_job(next_tag)).unwrap();
            d.push(dummy_job(next_tag + 1)).unwrap();
            if round % 2 == 0 {
                assert_eq!(d.pop().unwrap().data as usize, next_tag + 1);
                assert_eq!(d.steal().unwrap().data as usize, next_tag);
            } else {
                assert_eq!(d.steal().unwrap().data as usize, next_tag);
                assert_eq!(d.steal().unwrap().data as usize, next_tag + 1);
            }
            next_tag += 2;
        }
        assert!(d.pop().is_none());
    }

    #[test]
    fn deque_concurrent_owner_and_thieves_partition_the_jobs() {
        // One owner pushes/pops while two thieves steal; every pushed tag
        // must be consumed by exactly one party.
        const PER_ROUND: usize = 64;
        const ROUNDS: usize = 200;
        let d = Deque::new();
        let stolen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let stop = AtomicBool::new(false);
        let mut owned: Vec<usize> = Vec::new();
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    while !stop.load(Ordering::Acquire) {
                        if let Some(j) = d.steal() {
                            stolen.lock().unwrap().push(j.data as usize);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            let mut tag = 1usize;
            for _ in 0..ROUNDS {
                for _ in 0..PER_ROUND {
                    // Tags are never 0, so `data as usize` is unambiguous.
                    d.push(dummy_job(tag)).unwrap();
                    tag += 1;
                }
                while let Some(j) = d.pop() {
                    owned.push(j.data as usize);
                }
            }
            stop.store(true, Ordering::Release);
        });
        let mut all = owned;
        all.extend(stolen.into_inner().unwrap());
        all.sort_unstable();
        let expect: Vec<usize> = (1..=PER_ROUND * ROUNDS).collect();
        assert_eq!(all, expect, "every job consumed exactly once");
    }

    // -- join behavior -------------------------------------------------------

    #[test]
    fn join_returns_both_results_in_order() {
        setup();
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn deep_nesting_does_not_explode() {
        setup();
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
            a + b
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn left_leaning_recursion_overflows_into_injector() {
        setup();
        // Each frame publishes a tiny right branch and recurses in the
        // left, keeping ~DEPTH jobs outstanding at once — far past
        // DEQUE_CAPACITY. To make the overflow deterministic the 6 other
        // workers are pinned in spin jobs first (idle thieves would drain
        // the tiny jobs as fast as the chain pushes them), so the chain's
        // worker must reroute the excess to the injector.
        const DEPTH: usize = 3 * DEQUE_CAPACITY;
        const WORKERS: usize = 7; // WEC_THREADS(8) − 1
        fn chain(depth: usize, acc: &AtomicUsize) {
            if depth == 0 {
                return;
            }
            join(
                || chain(depth - 1, acc),
                || {
                    acc.fetch_add(1, Ordering::Relaxed);
                },
            );
        }
        /// join whose published branch provably starts before the inline
        /// branch returns (or a 5 s timeout passes), forcing remote
        /// execution on an otherwise-idle pool.
        fn run_remote(body: impl FnOnce() + Send) {
            let started = AtomicBool::new(false);
            join(
                || {
                    let t0 = Instant::now();
                    while !started.load(Ordering::Acquire) && t0.elapsed() < Duration::from_secs(5)
                    {
                        thread::yield_now();
                    }
                },
                || {
                    started.store(true, Ordering::Release);
                    body();
                },
            );
        }
        let _serial = stats_test_guard();
        let release = AtomicBool::new(false);
        let on_worker = AtomicBool::new(false);
        let acc = AtomicUsize::new(0);
        let before = scheduler_stats();
        thread::scope(|s| {
            for _ in 0..WORKERS - 1 {
                s.spawn(|| {
                    run_remote(|| {
                        while !release.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                    });
                });
            }
            run_remote(|| {
                if thread::current()
                    .name()
                    .unwrap_or("")
                    .starts_with("wec-rayon-")
                {
                    on_worker.store(true, Ordering::Release);
                }
                chain(DEPTH, &acc);
                release.store(true, Ordering::Release);
            });
            // If the chain fell back to inline execution (timeout path),
            // unpin the spinners ourselves.
            release.store(true, Ordering::Release);
        });
        assert_eq!(acc.load(Ordering::Relaxed), DEPTH);
        if on_worker.load(Ordering::Acquire) {
            let delta = scheduler_stats().since(&before);
            assert!(
                delta.deque_overflows > 0,
                "a {DEPTH}-deep left-leaning chain on a worker with no \
                 active thieves must overflow its {DEQUE_CAPACITY}-slot \
                 deque (delta: {delta:?})"
            );
        }
    }

    #[test]
    fn forced_contention_many_tiny_joins_stays_correct() {
        setup();
        // Satellite requirement: steal correctness under forced contention —
        // several external threads each drive bursts of tiny fan-out trees
        // through the 8-thread pool concurrently, so deques, the injector,
        // steals, and reclaims all interleave. Every leaf must be counted
        // exactly once.
        fn fan(lo: u64, hi: u64, hits: &AtomicUsize) -> u64 {
            if hi - lo <= 2 {
                hits.fetch_add((hi - lo) as usize, Ordering::Relaxed);
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| fan(lo, mid, hits), || fan(mid, hi, hits));
            a + b
        }
        let hits = AtomicUsize::new(0);
        let total = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        total.fetch_add(fan(0, 512, &hits), Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4 * 50 * 512);
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * (511 * 512 / 2));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate_from_left_branch() {
        setup();
        let _ = join(|| panic!("boom"), || 0);
    }

    #[test]
    #[should_panic(expected = "right boom")]
    fn panics_propagate_from_published_branch() {
        setup();
        let _ = join(|| 7, || panic!("right boom"));
    }

    #[test]
    fn caught_panics_counter_observes_isolation_boundary() {
        setup();
        let before = scheduler_stats();
        // Panics in either branch are caught at the scheduler boundary
        // (and re-raised to this caller); the pool must both survive and
        // count them.
        for i in 0..4u32 {
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                join(
                    || {
                        if i % 2 == 0 {
                            panic!("left fault")
                        }
                    },
                    || {
                        if i % 2 == 1 {
                            panic!("right fault")
                        }
                    },
                )
            }));
            assert!(result.is_err(), "branch panic must re-raise at the join");
        }
        let delta = scheduler_stats().since(&before);
        assert!(
            delta.caught_panics >= 4,
            "4 faulted joins must be counted, saw {}",
            delta.caught_panics
        );
        // The pool still schedules normally afterwards.
        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn panic_from_remotely_executed_job_propagates() {
        setup();
        // Force the published (right) branch to run on another thread: the
        // left branch refuses to finish until the right one has started,
        // so reclaim cannot win unless the wait times out (in which case
        // the panic still must propagate — just via the inline path).
        let mut remote_observed = false;
        for _ in 0..20 {
            let started = AtomicBool::new(false);
            let remote = AtomicBool::new(false);
            let caller = thread::current().id();
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                join(
                    || {
                        let t0 = Instant::now();
                        while !started.load(Ordering::Acquire)
                            && t0.elapsed() < Duration::from_secs(2)
                        {
                            thread::yield_now();
                        }
                    },
                    || {
                        if thread::current().id() != caller {
                            remote.store(true, Ordering::Release);
                        }
                        started.store(true, Ordering::Release);
                        panic!("stolen boom");
                    },
                )
            }));
            let payload = result.expect_err("the published branch panicked");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "stolen boom", "panic payload must round-trip");
            remote_observed |= remote.load(Ordering::Acquire);
        }
        assert!(
            remote_observed,
            "in 20 attempts on an 8-thread pool, at least one published \
             branch should have executed remotely"
        );
    }

    #[test]
    fn nested_join_reentrancy_on_workers() {
        setup();
        // Joins nested three deep, re-entered from whatever thread executes
        // each published branch (workers included): results must compose in
        // order at every level.
        let out: Vec<(u32, u32)> = (0..64u32)
            .map(|i| {
                let ((a, b), (c, d)) = join(
                    || join(|| i, || i + 1),
                    || join(|| i + 2, || join(|| i + 3, || i + 4).0 + 1),
                );
                assert_eq!((a, b, c), (i, i + 1, i + 2));
                (a + b, c + d)
            })
            .collect();
        for (i, &(ab, cd)) in out.iter().enumerate() {
            let i = i as u32;
            assert_eq!(ab, 2 * i + 1);
            assert_eq!(cd, 2 * i + 6);
        }
    }

    #[test]
    fn steals_and_deque_publishes_actually_happen() {
        setup();
        // A long-running saturating workload on an 8-thread pool must
        // exercise the work-stealing fast path: jobs published to worker
        // deques and at least one successful steal. (External submissions
        // from this test thread go through the injector; the nested splits
        // running on workers use their deques.)
        let _serial = stats_test_guard();
        let before = scheduler_stats();
        fn busy(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 8 {
                // enough per-leaf work that thieves have time to engage
                return (lo..hi).map(|x| x.wrapping_mul(x) % 1023).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| busy(lo, mid), || busy(mid, hi));
            a + b
        }
        let mut acc = 0u64;
        for _ in 0..20 {
            acc = acc.wrapping_add(busy(0, 4096));
        }
        assert!(acc > 0);
        let delta = scheduler_stats().since(&before);
        assert!(
            delta.published_deque > 0,
            "worker-side joins must publish to deques: {delta:?}"
        );
        assert!(
            delta.steals + delta.blocked_joins > 0,
            "a saturating workload must show cross-thread activity: {delta:?}"
        );
    }

    #[test]
    fn branches_run_only_inline_or_on_pool_workers() {
        setup();
        // A published right branch must execute either on the joining
        // thread itself (inline / reclaimed) or on one of the named
        // persistent workers — never on an ad-hoc spawned thread.
        let caller = thread::current().id();
        for _ in 0..256 {
            let ((), (id, name)) = join(std::thread::yield_now, || {
                let t = thread::current();
                (t.id(), t.name().unwrap_or("").to_string())
            });
            assert!(
                id == caller || name.starts_with("wec-rayon-"),
                "right branch ran on unexpected thread {name:?}"
            );
        }
    }

    #[test]
    fn injector_only_mode_still_computes_correctly() {
        setup();
        let _serial = stats_test_guard();
        force_injector_only(true);
        let before = scheduler_stats();
        let total: u64 = (0..256u64)
            .map(|i| {
                let (a, b) = join(move || i, move || i * 2);
                a + b
            })
            .sum();
        force_injector_only(false);
        assert_eq!(total, 3 * 255 * 256 / 2);
        let delta = scheduler_stats().since(&before);
        assert!(
            delta.published_injector >= 256,
            "injector-only mode must route every publish through the \
             injector: {delta:?}"
        );
    }
}
