//! Offline stand-in for the subset of `rayon` this workspace uses:
//! [`join`] and [`current_num_threads`].
//!
//! The build environment has no registry access, so instead of the real
//! work-stealing pool this shim runs the left branch of a `join` on a
//! freshly spawned scoped thread whenever a *parallelism token* is
//! available, and inline otherwise. Tokens are a global counter initialized
//! to `threads − 1`, so at most `threads` branches ever run concurrently
//! and nested joins degrade gracefully to sequential execution instead of
//! oversubscribing.
//!
//! Thread count resolution: the `WEC_THREADS` environment variable if set,
//! otherwise [`std::thread::available_parallelism`]. Callers that chunk
//! work at a sensible grain (thousands of elements per spawn) see spawn
//! overhead of tens of microseconds per join, which is noise at those
//! grains.

use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::OnceLock;

static TOKENS: OnceLock<AtomicIsize> = OnceLock::new();

fn tokens() -> &'static AtomicIsize {
    TOKENS.get_or_init(|| AtomicIsize::new(current_num_threads() as isize - 1))
}

/// The number of worker threads `join` may use in total (including the
/// calling thread).
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(s) = std::env::var("WEC_THREADS") {
            if let Ok(n) = s.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn try_acquire() -> bool {
    let t = tokens();
    let mut cur = t.load(Ordering::Relaxed);
    while cur > 0 {
        match t.compare_exchange_weak(cur, cur - 1, Ordering::Acquire, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(c) => cur = c,
        }
    }
    false
}

/// Returns the held token on drop, so a panic unwinding out of a branch
/// cannot permanently shrink the pool.
struct TokenGuard;

impl Drop for TokenGuard {
    fn drop(&mut self) {
        tokens().fetch_add(1, Ordering::Release);
    }
}

/// Run both closures, potentially in parallel, and return both results.
///
/// Matches `rayon::join`'s contract: `oper_a` and `oper_b` may run on
/// different threads; panics propagate to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if !try_acquire() {
        return (oper_a(), oper_b());
    }
    let _guard = TokenGuard;
    std::thread::scope(|s| {
        let ha = s.spawn(oper_a);
        let rb = oper_b();
        match ha.join() {
            Ok(ra) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn join_returns_both_results_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn deep_nesting_does_not_explode() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
            a + b
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn tokens_are_returned_after_use() {
        // Run enough joins that leaked tokens would exhaust the pool and
        // serialize everything — then confirm side effects still happen on
        // both branches.
        let hits = AtomicUsize::new(0);
        for _ in 0..256 {
            join(
                || hits.fetch_add(1, Ordering::Relaxed),
                || hits.fetch_add(1, Ordering::Relaxed),
            );
        }
        assert_eq!(hits.load(Ordering::Relaxed), 512);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        // Exercise both the spawned and inline paths; either must propagate.
        let _ = join(|| panic!("boom"), || 0);
    }

    #[test]
    fn tokens_survive_panicking_branches() {
        let before = tokens().load(Ordering::Relaxed);
        for _ in 0..32 {
            let _ = std::panic::catch_unwind(|| join(|| panic!("x"), || 0));
            let _ = std::panic::catch_unwind(|| join(|| 0, || panic!("y")));
        }
        // Every token taken by a panicking join must have been returned
        // (other tests may hold tokens concurrently, so allow >=).
        assert!(
            tokens().load(Ordering::Relaxed) >= before,
            "panicking joins leaked parallelism tokens"
        );
    }
}
