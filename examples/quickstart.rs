//! Quickstart: build both sublinear-write oracles on a bounded-degree
//! graph and query them, printing the model costs the paper reasons about.
//!
//! Run with: `cargo run --release --example quickstart`

use wec::asym::Ledger;
use wec::biconnectivity::oracle::build_biconnectivity_oracle;
use wec::connectivity::{ConnectivityOracle, OracleBuildOpts};
use wec::core::BuildOpts;
use wec::graph::{gen, Priorities, Vertex};

fn main() {
    let omega = 64u64; // NVM write ≈ 64× read
    let n = 20_000usize;
    let g = gen::bounded_degree_connected(n, 4, n / 4, 42);
    let pri = Priorities::random(n, 42);
    let verts: Vec<Vertex> = (0..n as u32).collect();

    // --- connectivity oracle (§4.3): O(n/√ω) writes ---
    let mut led = Ledger::new(omega);
    let k = led.sqrt_omega();
    let conn =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    println!("connectivity oracle   (k = {k}):");
    println!("  {}", led.report("build").render());
    let before = led.costs();
    let mut connected_pairs = 0;
    for i in 0..1000u32 {
        if conn.connected(&mut led, i, n as u32 - 1 - i) {
            connected_pairs += 1;
        }
    }
    let q = led.costs().since(&before);
    println!(
        "  1000 queries: {} reads, {} writes ({} connected pairs)",
        q.asym_reads, q.asym_writes, connected_pairs
    );

    // --- biconnectivity oracle (§5.3) ---
    let mut led2 = Ledger::new(omega);
    let bic = build_biconnectivity_oracle(&mut led2, &g, &pri, &verts, k, 1, BuildOpts::default());
    println!("biconnectivity oracle (k = {k}):");
    println!("  {}", led2.report("build").render());
    let before = led2.costs();
    let mut artic = 0;
    for v in (0..n as u32).step_by(20) {
        if bic.is_articulation(&mut led2, v) {
            artic += 1;
        }
    }
    let q2 = led2.costs().since(&before);
    println!(
        "  {} articulation-point queries: {} reads, {} writes ({} articulation points found)",
        n / 20,
        q2.asym_reads,
        q2.asym_writes,
        artic
    );
    println!(
        "  oracle state: {} words for n = {n} vertices (o(n))",
        bic.storage_words()
    );

    // --- the point: the dense representation would need ≥ n writes ---
    println!(
        "\nwrites: conn oracle {} + bicc oracle {} — a per-vertex labeling alone costs {n}",
        led.costs().asym_writes,
        led2.costs().asym_writes
    );
}
