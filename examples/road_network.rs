//! Road-network resilience: articulation junctions and bridge roads.
//!
//! A city grid with arterial shortcuts and a few peripheral communities
//! attached by single roads. The BC labeling (§5.2) answers "which
//! junctions/roads are single points of failure" with O(1) per query after
//! an O(n + m/ω)-write build; the §5.3 oracle answers the same plus
//! pairwise biconnectivity with only O(n/√ω) setup writes.
//!
//! Run with: `cargo run --release --example road_network`

use wec::asym::Ledger;
use wec::biconnectivity::{bc_labeling, oracle::build_biconnectivity_oracle};
use wec::core::BuildOpts;
use wec::graph::{gen, Csr, Priorities, Vertex};

fn main() {
    let side = 40usize;
    let omega = 64u64;
    // Core city: grid + diagonal shortcuts.
    let core = gen::add_random_edges(&gen::grid(side, side), side * side / 10, 3);
    // Peripheral communities, each hanging off one bridge road.
    let suburb = gen::grid(5, 5);
    let mut parts: Vec<&Csr> = vec![&core];
    let suburbs: Vec<Csr> = (0..6).map(|_| suburb.clone()).collect();
    parts.extend(suburbs.iter());
    let joined = gen::disjoint_union(&parts);
    let n0 = core.n() as u32;
    let mut edges = joined.edges().to_vec();
    for s in 0..6u32 {
        // one road from a core boundary junction into each suburb
        edges.push((s * 7 % n0, n0 + s * 25));
    }
    let g = Csr::from_edges(joined.n(), &edges);
    let n = g.n();
    println!(
        "road network: {} junctions, {} roads, ω = {omega}",
        n,
        g.m()
    );

    // --- §5.2 BC labeling ---
    let mut led = Ledger::new(omega);
    let bc = bc_labeling(&mut led, &g, 1.0 / omega as f64, 1);
    let artic: Vec<Vertex> = (0..n as u32)
        .filter(|&v| bc.is_articulation(&mut led, v))
        .collect();
    let bridges: Vec<(Vertex, Vertex)> = (0..g.m() as u32)
        .filter(|&e| bc.is_bridge(&mut led, e, &g))
        .map(|e| g.edge(e))
        .collect();
    println!(
        "BC labeling: build writes {} — {} articulation junctions, {} bridge roads, {} biconnected districts",
        led.costs().asym_writes,
        artic.len(),
        bridges.len(),
        bc.num_bcc
    );
    println!(
        "  bridge roads into suburbs: {:?}",
        &bridges[..bridges.len().min(6)]
    );

    // --- §5.3 oracle: same answers, sublinear setup writes ---
    let pri = Priorities::random(n, 5);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let mut led2 = Ledger::new(omega);
    let k = led2.sqrt_omega();
    let oracle =
        build_biconnectivity_oracle(&mut led2, &g, &pri, &verts, k, 2, BuildOpts::default());
    println!(
        "sublinear-write oracle: build writes {} (vs n = {n}), state {} words",
        led2.costs().asym_writes,
        oracle.storage_words()
    );
    // Cross-check a sample of answers between the two representations.
    let mut agree = 0;
    for v in (0..n as u32).step_by(11) {
        assert_eq!(
            oracle.is_articulation(&mut led2, v),
            bc.is_articulation(&mut led, v),
            "articulation({v})"
        );
        agree += 1;
    }
    // Pairwise resilience query: are two suburb entries biconnected?
    let (a, b) = (n0 + 3, n0 + 30);
    println!(
        "checked {agree} junctions against the BC labeling — all agree; biconnected({a},{b}) = {}",
        oracle.biconnected(&mut led2, a, b)
    );
}
