//! Repeatedly-sampled graphs — the paper's second motivating scenario:
//! "the graph is sampled and used multiple times, e.g., edges selected
//! based on different Boolean hash functions or based on properties
//! (timestamp, weight, relationship) associated with the edge."
//!
//! A fixed contact network is stored once (free, read-only); for each of a
//! series of hash-selected interaction subsets we build the sublinear-write
//! connectivity oracle (§4.3) and answer reachability queries. The oracle
//! keeps per-sample writes at O(n/√ω) — the dense labeling would pay Θ(n)
//! *every sample*.
//!
//! Run with: `cargo run --release --example social_sampling`

use std::hash::Hasher;
use wec::asym::{FxHasher, Ledger};
use wec::connectivity::{ConnectivityOracle, OracleBuildOpts};
use wec::graph::{gen, Csr, Priorities, Vertex};

fn keep_edge(u: Vertex, v: Vertex, round: u64, keep_ratio: u64) -> bool {
    let mut h = FxHasher::default();
    h.write_u64(((u as u64) << 32 | v as u64) ^ round.wrapping_mul(0x9e37_79b9));
    h.finish() % 100 < keep_ratio
}

fn main() {
    let n = 30_000usize;
    let omega = 100u64;
    let base = gen::bounded_degree_connected(n, 5, n / 3, 11);
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    println!("contact network: n = {n}, m = {}, ω = {omega}", base.m());

    let mut total_writes = 0u64;
    for round in 0..6u64 {
        // Boolean-hash edge selection for this round.
        let sampled: Vec<(Vertex, Vertex)> = base
            .edges()
            .iter()
            .copied()
            .filter(|&(u, v)| keep_edge(u, v, round, 70))
            .collect();
        let g = Csr::from_edges(n, &sampled);
        let mut led = Ledger::new(omega);
        let k = led.sqrt_omega();
        let oracle = ConnectivityOracle::build(
            &mut led,
            &g,
            &pri,
            &verts,
            k,
            round,
            OracleBuildOpts::default(),
        );
        let build_writes = led.costs().asym_writes;
        total_writes += build_writes;
        // Answer a query batch.
        let before = led.costs();
        let mut reachable = 0;
        for i in 0..2000u32 {
            if oracle.connected(&mut led, i * 7 % n as u32, (i * 13 + 5) % n as u32) {
                reachable += 1;
            }
        }
        let q = led.costs().since(&before);
        println!(
            "round {round}: kept {:6} edges, components≥1 center {:4}, build writes {:6} (n = {n}), 2000 queries: {} reads 0 writes, {reachable} reachable",
            sampled.len(),
            oracle.num_labeled_components(),
            build_writes,
            q.asym_reads,
        );
        assert_eq!(q.asym_writes, 0);
    }
    println!(
        "\ntotal oracle writes over 6 samples: {total_writes} — a per-vertex labeling would cost {} writes",
        6 * n
    );
}
