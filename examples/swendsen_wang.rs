//! Swendsen–Wang cluster Monte-Carlo — the paper's motivating scenario for
//! connectivity on *implicitly represented* graphs (its intro cites
//! Swendsen–Wang explicitly: the bond graph is resampled every sweep, so
//! the graph is never worth materializing, and conventional per-sweep
//! connectivity would pay Θ(m) writes sweep after sweep).
//!
//! Each sweep: sample bond edges of an Ising grid with probability
//! `p = 1 − e^{−2β}` among aligned spins, find connected components
//! write-efficiently (§4.2 with β_LDD = 1/ω), and flip each cluster with
//! probability 1/2. We compare the asymmetric-memory writes against the
//! prior-work contraction-based connectivity on the same bond graphs.
//!
//! Run with: `cargo run --release --example swendsen_wang`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wec::asym::Ledger;
use wec::baseline::shun_connectivity;
use wec::connectivity::connectivity_csr;
use wec::graph::{gen, Csr, Vertex};

fn main() {
    let side = 96usize;
    let n = side * side;
    let omega = 64u64;
    let coupling = 0.45; // β in Ising terms; near-critical is the fun regime
    let p_bond = 1.0 - (-2.0f64 * coupling).exp();
    let lattice = gen::grid(side, side);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut spins: Vec<i8> = (0..n)
        .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
        .collect();

    let mut ours_writes = 0u64;
    let mut prior_writes = 0u64;
    println!("Swendsen–Wang on a {side}×{side} Ising grid, p_bond = {p_bond:.3}, ω = {omega}");
    for sweep in 0..8 {
        // Sample the bond graph among aligned neighbors.
        let bonds: Vec<(Vertex, Vertex)> = lattice
            .edges()
            .iter()
            .copied()
            .filter(|&(u, v)| spins[u as usize] == spins[v as usize] && rng.gen::<f64>() < p_bond)
            .collect();
        let bond_graph = Csr::from_edges(n, &bonds);

        // Write-efficient connectivity (§4.2).
        let mut led = Ledger::new(omega);
        let conn = connectivity_csr(&mut led, &bond_graph, 1.0 / omega as f64, sweep);
        ours_writes += led.costs().asym_writes;

        // Prior-work comparator on the same bond graph.
        let mut led_prior = Ledger::new(omega);
        let _ = shun_connectivity(&mut led_prior, &bond_graph, sweep);
        prior_writes += led_prior.costs().asym_writes;

        // Flip whole clusters with probability 1/2.
        let mut flip = vec![false; conn.num_components];
        for f in flip.iter_mut() {
            *f = rng.gen::<bool>();
        }
        for v in 0..n {
            if flip[conn.labels[v] as usize] {
                spins[v] = -spins[v];
            }
        }
        let mag: i64 = spins.iter().map(|&s| s as i64).sum();
        println!(
            "sweep {sweep}: bonds {:6}  clusters {:5}  |m| {:.3}   writes ours {:8} prior {:8}",
            bonds.len(),
            conn.num_components,
            (mag.abs() as f64) / n as f64,
            led.costs().asym_writes,
            led_prior.costs().asym_writes,
        );
    }
    println!(
        "\ntotal asymmetric writes over 8 sweeps: ours {ours_writes}, prior-work {prior_writes} ({}x reduction)",
        prior_writes / ours_writes.max(1)
    );
}
