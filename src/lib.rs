//! # wec — Write-Efficient Connectivity
//!
//! A from-scratch Rust reproduction of **"Implicit Decomposition for
//! Write-Efficient Connectivity Algorithms"** (Ben-David, Blelloch,
//! Fineman, Gibbons, Gu, McGuffey, Shun — IPDPS 2018, arXiv:1710.02637).
//!
//! The paper targets memories where writes cost `ω ≫ 1` times more than
//! reads (NVM-class technologies) and shows how to build *oracles* for
//! graph connectivity and biconnectivity using asymptotically fewer
//! writes than any conventional algorithm — down to `O(n/√ω)` writes for
//! bounded-degree graphs via an **implicit k-decomposition** whose only
//! stored state is an `O(n/k)`-sized center set with 1-bit labels.
//!
//! This facade re-exports the workspace:
//!
//! * [`asym`] — the Asymmetric RAM / NP cost models (ledgers, fork-join
//!   work/depth accounting, tracked memory);
//! * [`graph`] — CSR graphs, deterministic generators, the §6
//!   bounded-degree transformation;
//! * [`prims`] — write-efficient BFS / filter / scan, Euler tours, LCA,
//!   low-diameter decomposition;
//! * [`baseline`] — prior-work comparators and brute-force test oracles;
//! * [`core`] — the implicit k-decomposition (paper §3);
//! * [`connectivity`] — §4.2 write-efficient connectivity + the §4.3
//!   sublinear-write connectivity oracle;
//! * [`biconnectivity`] — §5.2 BC labeling + the §5.3 sublinear-write
//!   biconnectivity oracle;
//! * [`serve`] — the serving layer over both oracles: sharded batch
//!   queries fanned out across per-shard ledger scopes, plus the streaming
//!   admission front end (micro-batch coalescing, submission-order
//!   delivery, per-shard result caches with affinity routing — repeat
//!   keys always land on the shard holding their entry — and
//!   deterministic CLOCK eviction, all under an exact, test-enforced
//!   cost contract), epoch-snapshot mutations (batched `GraphDelta`
//!   edge insertions staged into the next epoch's overlay and installed
//!   without ever blocking a read), and the wire-protocol front end:
//!   a length-prefixed binary codec behind a swappable `Transport`
//!   trait (in-process loopback; TCP), multi-tenant admission with
//!   quotas and deficit-round-robin fair-share batch composition, and
//!   per-connection windows mapped onto typed backpressure.
//!
//! ## Quickstart
//!
//! ```
//! use wec::asym::Ledger;
//! use wec::connectivity::{ConnectivityOracle, OracleBuildOpts};
//! use wec::graph::{gen, Priorities};
//!
//! let omega = 1024;                    // writes cost 1024 reads
//! let g = gen::bounded_degree_connected(2000, 4, 500, 7);
//! let pri = Priorities::random(g.n(), 7);
//! let verts: Vec<u32> = (0..g.n() as u32).collect();
//!
//! let mut led = Ledger::new(omega);
//! let k = led.sqrt_omega();            // k = √ω = 32
//! let oracle = ConnectivityOracle::build(
//!     &mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
//! assert!(led.costs().asym_writes < g.n() as u64, "sublinear writes");
//!
//! let w0 = led.costs().asym_writes;
//! let same = oracle.connected(&mut led, 3, 1997);
//! assert!(same);
//! assert_eq!(led.costs().asym_writes, w0, "queries never write");
//! ```

pub use wec_asym as asym;
pub use wec_baseline as baseline;
pub use wec_biconnectivity as biconnectivity;
pub use wec_connectivity as connectivity;
pub use wec_core as core;
pub use wec_graph as graph;
pub use wec_prims as prims;
pub use wec_serve as serve;
