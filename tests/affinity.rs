//! The affinity-routing + CLOCK-eviction contracts, exactly:
//!
//! 1. the documented affinity + CLOCK cost formula holds **exactly** —
//!    routing scan ops + per-shard input scan + probes + CLOCK touch ops
//!    on hits + full canonical miss costs + insert writes + per-evict
//!    sweep ops + the `s − 1` bookkeeping — verified cold and warm
//!    against an independent replay that re-implements the owner-shard
//!    hash and the CLOCK machine from the documented formulas alone;
//! 2. every charge is **bit-identical** between parallel and sequential
//!    ledgers; CI runs this file under `WEC_THREADS ∈ {1, 2, 8}`;
//! 3. eviction edge cases behave: capacity 0 bypasses the cache and
//!    charges exactly the sharded batch path, capacity 1 churns in place,
//!    and an adversarial all-distinct key stream pins hit rate 0 with
//!    exact counter identities;
//! 4. the skew fallback is exact: a pathologically skewed stream charges
//!    the contiguous dispatch plus the already-spent routing scan;
//! 5. **the capacity-pressure acceptance claim**: on a 94%-hot stream
//!    with total cache capacity ≤ 25% of the working set, affinity
//!    routing + CLOCK sustains a strictly higher cumulative hit ratio
//!    than the PR-3 contiguous + fill-until-full baseline.

use wec::asym::{stable_mix64, Costs, Ledger};
use wec::biconnectivity::oracle::build_biconnectivity_oracle;
use wec::biconnectivity::{BiconnQueryKey, BiconnectivityOracle};
use wec::connectivity::{ConnectivityOracle, OracleBuildOpts};
use wec::core::BuildOpts;
use wec::graph::{gen, Csr, Priorities, Vertex};
use wec::serve::{
    AdmissionPolicy, Eviction, FullServer, FullStreamingServer, Query, Routing, ShardedServer,
    StreamingServer, CACHE_INSERT_WRITES, CACHE_PROBE_READS, CLOCK_SWEEP_OPS, CLOCK_TOUCH_OPS,
    QUERY_WORDS, ROUTE_HASH_OPS,
};

const OMEGA: u64 = 64;
const SHARDS: usize = 4;

fn test_graph() -> Csr {
    gen::disjoint_union(&[
        &gen::bounded_degree_connected(700, 4, 150, 11),
        &gen::grid(8, 9),
        &gen::path(13),
        &Csr::from_edges(4, &[]),
    ])
}

fn build_oracles<'g>(
    g: &'g Csr,
    pri: &'g Priorities,
    verts: &'g [Vertex],
) -> (ConnectivityOracle<'g, Csr>, BiconnectivityOracle<'g, Csr>) {
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let conn = ConnectivityOracle::build(&mut led, g, pri, verts, k, 5, OracleBuildOpts::default());
    let bicon = build_biconnectivity_oracle(&mut led, g, pri, verts, k, 5, BuildOpts::default());
    (conn, bicon)
}

fn streaming_server<'o, 'g>(
    conn: &'o ConnectivityOracle<'g, Csr>,
    bicon: &'o BiconnectivityOracle<'g, Csr>,
    policy: AdmissionPolicy,
) -> FullStreamingServer<'o, 'g, Csr> {
    let sharded =
        ShardedServer::new(conn.query_handle(), SHARDS).with_biconnectivity(bicon.query_handle());
    StreamingServer::new(sharded, policy)
}

/// A deterministic mixed stream over a narrow vertex range (repetition =>
/// hits) — same generator family as the other serving tests.
fn mixed_stream(range: u32, len: usize, salt: u32) -> Vec<Query> {
    let mut v = salt;
    let mut step = move || {
        v = v.wrapping_mul(2654435761).wrapping_add(12345);
        v
    };
    (0..len)
        .map(|_| {
            let r = step();
            let a = step() % range;
            let b = (step() >> 7) % range;
            match r % 6 {
                0 | 1 => Query::Connected(a, b),
                2 | 3 => Query::Component(a),
                4 => Query::TwoEdgeConnected(a, b),
                _ => Query::Biconnected(a, b),
            }
        })
        .collect()
}

/// The documented owner-shard map, re-derived from the formulas in the
/// module docs (NOT by calling `StreamingServer::owner_shard`): the pinned
/// stable mix of the canonical cache key, modulo the shard count.
fn replay_owner(q: Query) -> usize {
    let h = match q {
        Query::Component(v) => stable_mix64(v as u64),
        Query::Connected(u, v) => stable_mix64(u.min(v) as u64),
        Query::TwoEdgeConnected(u, v) => {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            stable_mix64((a << 32 | b) ^ 0x2EC0_u64.rotate_left(48))
        }
        Query::Biconnected(u, v) => {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            stable_mix64((a << 32 | b) ^ 0xB1C0_u64.rotate_left(48))
        }
    };
    (h % SHARDS as u64) as usize
}

/// One simulated cache key (mirror of the serving layer's unified keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimKey {
    Comp(Vertex),
    Pred(BiconnQueryKey),
}

/// Independent CLOCK machine: a slot ring with second-chance bits and a
/// hand, re-implemented from the documented policy alone.
#[derive(Default)]
struct SimClock {
    slots: Vec<(SimKey, bool)>,
    hand: usize,
}

impl SimClock {
    /// Probe; on hit set the second-chance bit.
    fn probe(&mut self, key: SimKey) -> bool {
        if let Some(i) = self.slots.iter().position(|&(k, _)| k == key) {
            self.slots[i].1 = true;
            return true;
        }
        false
    }

    /// Fill after a miss, returning the sweep length (0 = appended below
    /// capacity).
    fn fill(&mut self, key: SimKey, capacity: usize) -> u64 {
        if self.slots.len() < capacity {
            self.slots.push((key, false));
            return 0;
        }
        let mut swept = 0u64;
        loop {
            swept += 1;
            let h = self.hand;
            self.hand = (self.hand + 1) % capacity;
            if self.slots[h].1 {
                self.slots[h].1 = false;
            } else {
                self.slots[h] = (key, false);
                return swept;
            }
        }
    }
}

/// Replay the affinity + CLOCK cost formula over one pass of the stream:
/// consecutive `max_batch`-sized micro-batches, owner-shard grouping (the
/// replay asserts no batch trips the skew fallback), per-shard CLOCK
/// simulation, and the miss costs priced by one-by-one canonical queries
/// on fresh ledgers. `sims` carries per-shard CLOCK state in and out so a
/// second call prices the warmed pass.
fn replay_affinity_clock(
    server1: &FullServer<'_, '_, Csr>,
    stream: &[Query],
    max_batch: usize,
    capacity: usize,
    skew_factor: u32,
    sims: &mut [SimClock],
) -> Costs {
    let mut expect = Costs::ZERO;
    for batch in stream.chunks(max_batch) {
        let n = batch.len();
        expect.sym_ops += n as u64 * ROUTE_HASH_OPS; // routing scan
        expect.sym_ops += SHARDS as u64 - 1; // split bookkeeping: s chunks
        expect.asym_reads += n as u64 * QUERY_WORDS; // per-shard input scans
        let mut group_sizes = [0usize; SHARDS];
        for &q in batch {
            group_sizes[replay_owner(q)] += 1;
        }
        let max_group = *group_sizes.iter().max().unwrap();
        assert!(
            max_group <= skew_factor as usize * n.div_ceil(SHARDS),
            "replay assumes no skew fallback; pick a less skewed stream"
        );
        for &q in batch {
            let sim = &mut sims[replay_owner(q)];
            let mut led = Ledger::new(OMEGA);
            let mut memo = |sim: &mut SimClock, led: &mut Ledger, key: SimKey| {
                expect.asym_reads += CACHE_PROBE_READS;
                if sim.probe(key) {
                    expect.sym_ops += CLOCK_TOUCH_OPS;
                    return;
                }
                match key {
                    SimKey::Comp(x) => {
                        server1.conn_handle().component(led, x);
                    }
                    SimKey::Pred(k) => {
                        server1.bicon_handle().unwrap().answer_key(led, k);
                    }
                }
                let swept = sim.fill(key, capacity);
                expect.sym_ops += swept * CLOCK_SWEEP_OPS;
                expect.asym_writes += CACHE_INSERT_WRITES;
            };
            match q {
                Query::Component(v) => memo(sim, &mut led, SimKey::Comp(v)),
                Query::Connected(u, v) => {
                    memo(sim, &mut led, SimKey::Comp(u));
                    memo(sim, &mut led, SimKey::Comp(v));
                }
                Query::TwoEdgeConnected(u, v) => memo(
                    sim,
                    &mut led,
                    SimKey::Pred(BiconnQueryKey::two_edge_connected(u, v)),
                ),
                Query::Biconnected(u, v) => memo(
                    sim,
                    &mut led,
                    SimKey::Pred(BiconnQueryKey::biconnected(u, v)),
                ),
            }
            expect += led.costs();
        }
    }
    expect
}

#[test]
fn affinity_clock_contract_exact_cold_then_warm() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    // Narrow range => repetition; small capacity => real evictions.
    let stream = mixed_stream(120, 260, 0xAF1);
    let (max_batch, capacity, skew) = (64usize, 24usize, 4u32);
    let mut srv = streaming_server(
        &conn,
        &bicon,
        AdmissionPolicy::builder()
            .max_batch(max_batch)
            .max_queue(10_000)
            .cache_capacity(capacity)
            .routing(Routing::Affinity { skew_factor: skew })
            .eviction(Eviction::Clock)
            .build(),
    );
    let server1 =
        ShardedServer::new(conn.query_handle(), 1).with_biconnectivity(bicon.query_handle());

    // Cold pass.
    let mut cold = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut cold, q).unwrap();
    }
    srv.drain(&mut cold);
    assert_eq!(srv.take_ready().len(), stream.len());

    let mut sims: Vec<SimClock> = (0..SHARDS).map(|_| SimClock::default()).collect();
    let expect_cold =
        replay_affinity_clock(&server1, &stream, max_batch, capacity, skew, &mut sims);
    assert_eq!(cold.costs(), expect_cold, "cold-pass formula mismatch");

    let stats = srv.cache_stats();
    assert!(stats.hits > 0, "repetitive stream must hit even cold");
    assert!(stats.evictions > 0, "capacity pressure must evict");
    assert_eq!(
        cold.costs().asym_writes,
        stats.inserts * CACHE_INSERT_WRITES,
        "cache fills are the only writes, evictions included"
    );

    // Warm pass over the same stream and surviving CLOCK state.
    let mut warm = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut warm, q).unwrap();
    }
    srv.drain(&mut warm);
    assert_eq!(srv.take_ready().len(), stream.len());

    let expect_warm =
        replay_affinity_clock(&server1, &stream, max_batch, capacity, skew, &mut sims);
    assert_eq!(warm.costs(), expect_warm, "warm-pass formula mismatch");
    let warm_stats = srv.cache_stats();
    assert!(
        warm_stats.hits > stats.hits,
        "warm pass must add hits on surviving entries"
    );
}

#[test]
fn affinity_clock_bit_identical_across_parallelism() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let stream = mixed_stream(n as u32, 300, 0xD1CE);
    let run = |mut led: Ledger| {
        let mut srv = streaming_server(
            &conn,
            &bicon,
            AdmissionPolicy::builder()
                .max_batch(32)
                .max_queue(64)
                .cache_capacity(16) // small: evictions exercised
                .routing(Routing::Affinity { skew_factor: 4 })
                .eviction(Eviction::Clock)
                .build(),
        );
        for &q in &stream {
            srv.submit(&mut led, q).unwrap();
        }
        srv.drain(&mut led);
        let answers: Vec<(u64, _)> = srv
            .take_ready()
            .into_iter()
            .map(|(t, a)| (t.id(), a))
            .collect();
        let s = srv.cache_stats();
        (
            answers,
            (s.hits, s.misses, s.inserts, s.evictions, s.entries),
            led.costs(),
            led.depth(),
            led.sym_peak(),
        )
    };
    let par = run(Ledger::new(OMEGA));
    let seq = run(Ledger::sequential(OMEGA));
    assert_eq!(
        par, seq,
        "affinity+CLOCK not bit-identical across parallelism"
    );
}

#[test]
fn capacity_zero_bypasses_cache_even_under_affinity_clock() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let stream = mixed_stream(n as u32, 120, 0xCAFE);
    let max_batch = 40usize;
    let mut srv = streaming_server(
        &conn,
        &bicon,
        AdmissionPolicy::builder()
            .max_batch(max_batch)
            .max_queue(10_000)
            .cache_capacity(0)
            .routing(Routing::Affinity { skew_factor: 4 })
            .eviction(Eviction::Clock)
            .build(),
    );
    let mut led = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut led, q).unwrap();
    }
    srv.drain(&mut led);
    assert_eq!(srv.take_ready().len(), stream.len());
    let stats = srv.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.inserts, stats.evictions),
        (0, 0, 0, 0),
        "capacity 0 must not touch any cache machinery"
    );

    // Nothing to hit => routing is forced contiguous and the dispatch
    // charges exactly the plain sharded batch path.
    let sharded =
        ShardedServer::new(conn.query_handle(), SHARDS).with_biconnectivity(bicon.query_handle());
    let mut expect = Ledger::new(OMEGA);
    for chunk in stream.chunks(max_batch) {
        sharded.serve(&mut expect, chunk);
    }
    assert_eq!(led.costs(), expect.costs());
    assert_eq!(led.depth(), expect.depth());
}

#[test]
fn capacity_one_churns_in_place_and_stays_correct() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let stream = mixed_stream(60, 200, 0x01E);
    let mut srv = streaming_server(
        &conn,
        &bicon,
        AdmissionPolicy::builder()
            .max_batch(32)
            .max_queue(64)
            .cache_capacity(1)
            .routing(Routing::Affinity { skew_factor: 4 })
            .eviction(Eviction::Clock)
            .build(),
    );
    let mut led = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut led, q).unwrap();
    }
    srv.drain(&mut led);
    let delivered = srv.take_ready();
    assert_eq!(delivered.len(), stream.len());

    let mut total_entries = 0;
    for shard in 0..SHARDS {
        let s = srv.shard_cache_stats(shard);
        assert!(s.entries <= 1, "shard {shard} exceeds capacity 1");
        assert_eq!(
            s.evictions,
            s.inserts - s.entries,
            "every fill past the first evicts the lone entry (shard {shard})"
        );
        total_entries += s.entries;
    }
    assert!(total_entries > 0, "something must be resident");

    let server1 =
        ShardedServer::new(conn.query_handle(), 1).with_biconnectivity(bicon.query_handle());
    for (i, (_, a)) in delivered.iter().enumerate() {
        let mut one = Ledger::new(OMEGA);
        assert_eq!(
            a.unwrap(),
            server1.answer_one(&mut one, stream[i]),
            "answer {i}"
        );
    }
}

#[test]
fn adversarial_churn_all_distinct_keys_hit_rate_zero() {
    let g = test_graph();
    let n = g.n() as u32;
    let pri = Priorities::random(n as usize, 11);
    let verts: Vec<Vertex> = (0..n).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    // Every key distinct: one Component query per vertex, no repeats.
    let stream: Vec<Query> = (0..n).map(Query::Component).collect();
    let capacity = 8usize;
    let mut srv = streaming_server(
        &conn,
        &bicon,
        AdmissionPolicy::builder()
            .max_batch(64)
            .max_queue(10_000)
            .cache_capacity(capacity)
            .routing(Routing::Affinity { skew_factor: 4 })
            .eviction(Eviction::Clock)
            .build(),
    );
    let mut led = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut led, q).unwrap();
    }
    srv.drain(&mut led);
    assert_eq!(srv.take_ready().len(), stream.len());

    let stats = srv.cache_stats();
    assert_eq!(stats.hits, 0, "all-distinct churn can never hit");
    assert_eq!(stats.hit_ratio(), 0.0);
    assert_eq!(stats.misses, n as u64);
    assert_eq!(stats.inserts, n as u64, "CLOCK fills on every miss");
    assert_eq!(
        stats.evictions,
        stats.inserts - stats.entries,
        "every fill past residency evicts exactly one entry"
    );
    // Never-referenced entries fall to a single-slot sweep, so the cache's
    // whole symmetric-op bill is one sweep op per eviction (plus nothing
    // for touches: there are no hits).
    assert_eq!(
        led.costs().asym_writes,
        stats.inserts * CACHE_INSERT_WRITES,
        "fills are the only writes under churn too"
    );
}

#[test]
fn skew_fallback_charges_contiguous_plus_routing_scan() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    // Every query shares one routing key => one owner group holds the
    // whole batch => skew_factor 1 trips the fallback on every batch.
    let stream: Vec<Query> = (0..150).map(|_| Query::Component(7)).collect();
    let run = |routing: Routing| {
        let mut srv = streaming_server(
            &conn,
            &bicon,
            AdmissionPolicy::builder()
                .max_batch(50)
                .max_queue(10_000)
                .cache_capacity(64)
                .routing(routing)
                .eviction(Eviction::Clock)
                .build(),
        );
        let mut led = Ledger::new(OMEGA);
        for &q in &stream {
            srv.submit(&mut led, q).unwrap();
        }
        srv.drain(&mut led);
        assert_eq!(srv.take_ready().len(), stream.len());
        (led.costs(), led.depth())
    };
    let (skewed, skewed_depth) = run(Routing::Affinity { skew_factor: 1 });
    let (contig, contig_depth) = run(Routing::Contiguous);
    let routed_ops = stream.len() as u64 * ROUTE_HASH_OPS;
    let mut expect = contig;
    expect.sym_ops += routed_ops;
    assert_eq!(
        skewed, expect,
        "fallback must charge contiguous dispatch + the routing scan"
    );
    assert_eq!(
        skewed_depth,
        contig_depth + routed_ops,
        "the routing scan is sequential depth"
    );
}

/// **Acceptance criterion of PR 4**: on a 94%-hot stream with total cache
/// capacity ≤ 25% of the working set, affinity routing + CLOCK eviction
/// sustains a strictly higher cumulative hit ratio than the PR-3
/// contiguous + fill-until-full baseline (whose per-shard caches must each
/// hold the *entire* hot set and go cold-dead once junk fills them).
#[test]
fn affinity_clock_beats_fill_baseline_under_capacity_pressure() {
    let g = test_graph();
    let n = g.n() as u32;
    let pri = Priorities::random(n as usize, 11);
    let verts: Vec<Vertex> = (0..n).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    // 94%-hot component stream: hot keys 0..64, cold keys uniform over the
    // rest of the graph (mostly one-shot junk).
    const HOT: u32 = 64;
    let mut v = 0x94u32;
    let mut step = move || {
        v = v.wrapping_mul(2654435761).wrapping_add(12345);
        v
    };
    let stream: Vec<Query> = (0..4000)
        .map(|_| {
            let r = step();
            let x = step();
            if r % 256 < 241 {
                Query::Component(x % HOT) // ~94.1% hot
            } else {
                Query::Component(HOT + x % (n - HOT)) // cold junk
            }
        })
        .collect();

    // Working set = distinct keys the stream probes.
    let mut seen = std::collections::HashSet::new();
    for q in &stream {
        let Query::Component(v) = *q else {
            unreachable!()
        };
        seen.insert(v);
    }
    let working_set = seen.len();
    // Total capacity ≤ 25% of the working set, split across shards.
    let per_shard = (working_set / 4) / SHARDS;
    assert!(per_shard * SHARDS * 4 <= working_set);
    assert!(
        per_shard > 0 && per_shard < HOT as usize,
        "pressure sanity: one baseline shard cache ({per_shard} slots) must \
         not be able to hold the whole hot set"
    );

    let hit_ratio = |routing: Routing, eviction: Eviction| {
        let mut srv = streaming_server(
            &conn,
            &bicon,
            AdmissionPolicy::builder()
                .max_batch(64)
                .max_queue(64)
                .cache_capacity(per_shard)
                .routing(routing)
                .eviction(eviction)
                .build(),
        );
        let mut led = Ledger::new(OMEGA);
        for &q in &stream {
            srv.submit(&mut led, q).unwrap();
        }
        srv.drain(&mut led);
        assert_eq!(srv.take_ready().len(), stream.len());
        srv.cache_stats().hit_ratio()
    };

    let baseline = hit_ratio(Routing::Contiguous, Eviction::FillUntilFull);
    let routed = hit_ratio(Routing::Affinity { skew_factor: 4 }, Eviction::Clock);
    assert!(
        routed > baseline,
        "affinity+CLOCK ({routed:.3}) must strictly beat contiguous+fill ({baseline:.3}) \
         at capacity {per_shard}/shard, working set {working_set}"
    );
}
