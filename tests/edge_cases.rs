//! Failure injection and degenerate inputs across the public API:
//! ω = 1 (symmetric memory), k > n, empty/singleton graphs, raw edge lists
//! with self-loops and duplicates, stars and long paths (worst-case trees).

use wec::asym::Ledger;
use wec::baseline::brute;
use wec::biconnectivity::{bc_labeling, oracle::build_biconnectivity_oracle};
use wec::connectivity::{connectivity_csr, ConnectivityOracle, OracleBuildOpts};
use wec::core::BuildOpts;
use wec::graph::{gen, Csr, Priorities, Vertex};

fn verts(n: usize) -> Vec<Vertex> {
    (0..n as u32).collect()
}

#[test]
fn omega_one_degenerates_gracefully() {
    // ω = 1 is the ordinary symmetric RAM: everything must still be correct
    // (k = √1 = 1: every vertex its own cluster).
    let g = gen::bounded_degree_connected(60, 4, 20, 1);
    let pri = Priorities::random(60, 1);
    let mut led = Ledger::new(1);
    let k = led.sqrt_omega();
    let oracle = ConnectivityOracle::build(
        &mut led,
        &g,
        &pri,
        &verts(60),
        k,
        1,
        OracleBuildOpts::default(),
    );
    for u in 0..60u32 {
        assert!(oracle.connected(&mut led, u, 0));
    }
    let bicc =
        build_biconnectivity_oracle(&mut led, &g, &pri, &verts(60), 1, 1, BuildOpts::default());
    for v in 0..60u32 {
        assert_eq!(
            bicc.is_articulation(&mut led, v),
            brute::articulation_points(&g)[v as usize]
        );
    }
}

#[test]
fn k_exceeding_n_is_fine() {
    let g = gen::cycle(9);
    let pri = Priorities::random(9, 4);
    let mut led = Ledger::new(10_000);
    let oracle =
        build_biconnectivity_oracle(&mut led, &g, &pri, &verts(9), 100, 3, BuildOpts::default());
    for u in 0..9u32 {
        for v in 0..9u32 {
            assert!(oracle.biconnected(&mut led, u, v));
            assert!(oracle.two_edge_connected(&mut led, u, v));
        }
    }
    assert!(!oracle.is_articulation(&mut led, 4));
}

#[test]
fn dirty_edge_lists_are_canonicalized() {
    // duplicates, reversed duplicates, and self-loops
    let g = Csr::from_edges(5, &[(0, 1), (1, 0), (0, 1), (2, 2), (1, 2), (3, 4), (4, 3)]);
    assert_eq!(g.m(), 3);
    let mut led = Ledger::new(16);
    let r = connectivity_csr(&mut led, &g, 0.25, 1);
    assert_eq!(r.num_components, 2);
    let bc = bc_labeling(&mut led, &g, 0.25, 1);
    assert!(bc.is_articulation(&mut led, 1));
    assert_eq!(bc.num_bcc, 3);
}

#[test]
fn empty_and_singleton_graphs_everywhere() {
    for n in [0usize, 1, 2] {
        let g = Csr::from_edges(n, &[]);
        let mut led = Ledger::new(16);
        let r = connectivity_csr(&mut led, &g, 0.5, 1);
        assert_eq!(r.num_components, n);
        let bc = bc_labeling(&mut led, &g, 0.5, 1);
        assert_eq!(bc.num_bcc, 0);
        if n > 0 {
            let pri = Priorities::random(n, 1);
            let oracle = build_biconnectivity_oracle(
                &mut led,
                &g,
                &pri,
                &verts(n),
                4,
                1,
                BuildOpts::default(),
            );
            assert!(!oracle.is_articulation(&mut led, 0));
            if n == 2 {
                assert!(!oracle.connected(&mut led, 0, 1));
                assert!(!oracle.biconnected(&mut led, 0, 1));
            }
        }
    }
}

#[test]
fn single_edge_graph() {
    let g = Csr::from_edges(2, &[(0, 1)]);
    let pri = Priorities::random(2, 2);
    let mut led = Ledger::new(16);
    let oracle =
        build_biconnectivity_oracle(&mut led, &g, &pri, &verts(2), 4, 1, BuildOpts::default());
    assert!(oracle.connected(&mut led, 0, 1));
    assert!(oracle.biconnected(&mut led, 0, 1)); // adjacent ⇒ share the bridge BCC
    assert!(!oracle.two_edge_connected(&mut led, 0, 1));
    assert!(oracle.is_bridge(&mut led, 0, 1));
}

#[test]
fn long_path_worst_case_tree() {
    // Long paths are the worst case for the splitter and the chain checks.
    let n = 400usize;
    let g = gen::path(n);
    let pri = Priorities::random(n, 8);
    for k in [2usize, 7, 16] {
        let mut led = Ledger::new((k * k) as u64);
        let oracle =
            build_biconnectivity_oracle(&mut led, &g, &pri, &verts(n), k, 9, BuildOpts::default());
        // every edge a bridge, every internal vertex an articulation point
        assert!(oracle.is_bridge(&mut led, 100, 101));
        assert!(oracle.is_articulation(&mut led, 200));
        assert!(!oracle.is_articulation(&mut led, 0));
        assert!(!oracle.biconnected(&mut led, 0, (n - 1) as u32));
        assert!(!oracle.two_edge_connected(&mut led, 10, 11));
        assert!(oracle.biconnected(&mut led, 10, 11)); // adjacent via bridge BCC
    }
}

#[test]
fn star_with_identity_priorities() {
    // identity priorities stress tie-breaking determinism on a hub
    let g = gen::star(50);
    let pri = Priorities::identity(50);
    let mut led = Ledger::new(16);
    let oracle =
        build_biconnectivity_oracle(&mut led, &g, &pri, &verts(50), 4, 1, BuildOpts::default());
    assert!(oracle.is_articulation(&mut led, 0));
    for leaf in 1..50u32 {
        assert!(!oracle.is_articulation(&mut led, leaf));
        assert!(oracle.is_bridge(&mut led, 0, leaf));
    }
    assert!(!oracle.biconnected(&mut led, 1, 2));
}
