//! Epoch-snapshot serving: the PR-7 mutation contract, exactly:
//!
//! 1. **submission-epoch semantics** — a ticket always resolves with the
//!    answer of the graph version it was submitted against: entries in
//!    flight across an install dispatch as stragglers through their own
//!    epoch's retained overlay, and old overlays retire only once
//!    delivery passes the install boundary;
//! 2. **dynamic correctness** — across several insertion batches, every
//!    connectivity answer matches an independent union-find reference
//!    over base edges plus the applied deltas;
//! 3. **priced invalidation** — an install charges exactly
//!    `EPOCH_INSTALL_OPS` plus `swept · INVALIDATE_SCAN_OPS` operations
//!    and `removed · INVALIDATE_ENTRY_WRITES` asymmetric writes, where
//!    `removed` is hand-computed from the new overlay (stale = cached
//!    component id remapped), and the warm replay after an install hits
//!    exactly the surviving entries;
//! 4. **thread invariance** — a full submit/stage/install/drain sequence
//!    charges bit-identical `Costs`, depth, and symmetric peak on
//!    parallel and sequential ledgers (CI re-runs this file across the
//!    `WEC_THREADS` matrix);
//! 5. **composition** — several staged batches fold into one install, and
//!    an empty delta is a free no-op;
//! 6. **base-graph predicates** — biconnectivity-class queries keep base
//!    graph semantics across installs (the documented limitation of the
//!    insertion-only mutation model).

use wec::asym::{
    Costs, Ledger, EPOCH_INSTALL_OPS, INVALIDATE_ENTRY_WRITES, INVALIDATE_SCAN_OPS,
    OVERLAY_LOOKUP_READS,
};
use wec::baseline::UnionFind;
use wec::biconnectivity::oracle::build_biconnectivity_oracle;
use wec::connectivity::{ComponentId, ConnectivityOracle, GraphDelta, OracleBuildOpts};
use wec::core::BuildOpts;
use wec::graph::{gen, Csr, Priorities, Vertex};
use wec::serve::{AdmissionPolicy, Answer, Query, ShardedServer, StreamingServer};

const OMEGA: u64 = 64;
const SHARDS: usize = 4;

/// Three disjoint paths: components [0, 20), [20, 40), [40, 60). Deltas
/// merge them in controlled steps.
const BLOCK: u32 = 20;
const BLOCKS: u32 = 3;
const N: u32 = BLOCK * BLOCKS;

fn test_graph() -> Csr {
    gen::disjoint_union(&[
        &gen::path(BLOCK as usize),
        &gen::path(BLOCK as usize),
        &gen::path(BLOCK as usize),
    ])
}

/// The same base graph as an edge list, for the union-find reference.
fn base_edges() -> Vec<(u32, u32)> {
    let mut e = Vec::new();
    for b in 0..BLOCKS {
        for i in 0..BLOCK - 1 {
            e.push((b * BLOCK + i, b * BLOCK + i + 1));
        }
    }
    e
}

fn build_conn<'g>(
    g: &'g Csr,
    pri: &'g Priorities,
    verts: &'g [Vertex],
) -> ConnectivityOracle<'g, Csr> {
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    ConnectivityOracle::build(&mut led, g, pri, verts, k, 5, OracleBuildOpts::default())
}

/// A no-auto-dispatch policy: batches move only on explicit flush/drain,
/// so tests control exactly which tickets are in flight at an install.
fn manual_policy(cache_capacity: usize) -> AdmissionPolicy {
    AdmissionPolicy::builder()
        .max_batch(256)
        .max_queue(100_000)
        .cache_capacity(cache_capacity)
        .build()
}

fn unwrap_connected(r: &Result<Answer, wec::serve::ServeError>) -> bool {
    match r {
        Ok(Answer::Connected(b)) => *b,
        other => panic!("expected a Connected answer, got {other:?}"),
    }
}

fn unwrap_component(r: &Result<Answer, wec::serve::ServeError>) -> ComponentId {
    match r {
        Ok(Answer::Component(id)) => *id,
        other => panic!("expected a Component answer, got {other:?}"),
    }
}

#[test]
fn stragglers_resolve_with_submission_epoch_answers() {
    let g = test_graph();
    let pri = Priorities::random(g.n(), 7);
    let verts: Vec<Vertex> = (0..N).collect();
    let conn = build_conn(&g, &pri, &verts);
    let mut srv = StreamingServer::new(
        ShardedServer::new(conn.query_handle(), SHARDS),
        manual_policy(1 << 12),
    );
    let mut led = Ledger::new(OMEGA);

    // Ticket 0 submitted under epoch 0, left undispatched across the
    // install: blocks 0 and 1 are separate components at submission time.
    let t0 = srv.submit(&mut led, Query::Connected(0, BLOCK)).unwrap();
    assert_eq!(srv.current_epoch(), 0);

    // Stage and install the bridge while t0 is still queued. Neither step
    // touches the queue: no query ever blocks on an install.
    srv.stage_delta(&mut led, &GraphDelta::from_edges(vec![(BLOCK - 1, BLOCK)]));
    assert_eq!(srv.current_epoch(), 0, "staging leaves the serving epoch");
    assert_eq!(srv.install_staged(&mut led), Some(1));
    assert_eq!(srv.current_epoch(), 1);

    // Ticket 1 asks the same question under epoch 1.
    let t1 = srv.submit(&mut led, Query::Connected(0, BLOCK)).unwrap();
    srv.drain(&mut led);

    let out = srv.take_ready();
    assert_eq!((out[0].0, out[1].0), (t0, t1));
    assert!(
        !unwrap_connected(&out[0].1),
        "epoch-0 straggler answers with epoch-0 connectivity"
    );
    assert!(
        unwrap_connected(&out[1].1),
        "epoch-1 submission sees the inserted bridge"
    );

    let stats = srv.epoch_stats();
    assert_eq!(stats.installs, 1);
    assert_eq!(stats.staged_batches, 1);
    assert_eq!(stats.staged_edges, 1);
    assert_eq!(stats.straggler_answers, 1);
    assert_eq!(
        stats.in_flight_at_install, 1,
        "ticket 0 was outstanding at the install"
    );
    assert_eq!(
        srv.live_epochs(),
        vec![1],
        "delivery passed the boundary, epoch 0 retired"
    );
    assert_eq!(srv.epoch_stats().retired_overlays, 1);
}

#[test]
fn mutated_answers_match_dynamic_union_find_reference() {
    let g = test_graph();
    let pri = Priorities::random(g.n(), 11);
    let verts: Vec<Vertex> = (0..N).collect();
    let conn = build_conn(&g, &pri, &verts);
    let mut srv = StreamingServer::new(
        ShardedServer::new(conn.query_handle(), SHARDS),
        manual_policy(1 << 12),
    );
    let mut led = Ledger::new(OMEGA);

    let mut reference = UnionFind::new(N as usize);
    for &(u, v) in &base_edges() {
        reference.union(u, v);
    }

    // Deterministic pair sample spread across all blocks.
    let pairs: Vec<(u32, u32)> = (0..N)
        .map(|i| (i, (i.wrapping_mul(17).wrapping_add(5)) % N))
        .collect();

    let batches: Vec<Vec<(u32, u32)>> = vec![
        vec![(3, BLOCK + 3)],                      // merge blocks 0 and 1
        vec![(BLOCK + 7, 2 * BLOCK + 1), (0, 5)],  // merge in block 2; redundant edge
        vec![(1, 2 * BLOCK + 9), (4, BLOCK + 18)], // already merged: all redundant
    ];

    for batch in batches {
        // Queries submitted *before* the install must answer pre-install
        // connectivity even though they dispatch after it.
        let pre: Vec<_> = pairs
            .iter()
            .map(|&(u, v)| {
                let expect = reference.find(u) == reference.find(v);
                (
                    srv.submit(&mut led, Query::Connected(u, v)).unwrap(),
                    expect,
                )
            })
            .collect();

        let delta = GraphDelta::from_edges(batch.clone());
        srv.apply_delta(&mut led, &delta);
        for &(u, v) in &batch {
            reference.union(u, v);
        }
        srv.drain(&mut led);
        let mut ready = srv.take_ready().into_iter();
        for (t, expect) in pre {
            let (got_t, r) = ready.next().unwrap();
            assert_eq!(got_t, t);
            assert_eq!(unwrap_connected(&r), expect, "pre-install pair {t:?}");
        }

        // Post-install: pair answers and the whole Component partition
        // must match the mutated reference.
        for &(u, v) in &pairs {
            let t = srv.submit(&mut led, Query::Connected(u, v)).unwrap();
            srv.drain(&mut led);
            let (got_t, r) = srv.take_ready().pop().unwrap();
            assert_eq!(got_t, t);
            assert_eq!(
                unwrap_connected(&r),
                reference.find(u) == reference.find(v),
                "post-install pair ({u}, {v})"
            );
        }
        let ids: Vec<ComponentId> = (0..N)
            .map(|v| {
                srv.submit(&mut led, Query::Component(v)).unwrap();
                srv.drain(&mut led);
                unwrap_component(&srv.take_ready().pop().unwrap().1)
            })
            .collect();
        for u in 0..N {
            for v in u + 1..N {
                assert_eq!(
                    ids[u as usize] == ids[v as usize],
                    reference.find(u) == reference.find(v),
                    "partition mismatch at ({u}, {v})"
                );
            }
        }
    }
}

#[test]
fn install_charges_exactly_the_priced_invalidation_sweep() {
    let g = test_graph();
    let pri = Priorities::random(g.n(), 13);
    let verts: Vec<Vertex> = (0..N).collect();
    let conn = build_conn(&g, &pri, &verts);
    let mut srv = StreamingServer::new(
        ShardedServer::new(conn.query_handle(), SHARDS),
        manual_policy(1 << 12),
    );
    let mut led = Ledger::new(OMEGA);

    // Cold pass: memoize every vertex. Capacity is ample, so entries ==
    // distinct vertices and nothing evicts.
    for v in 0..N {
        srv.submit(&mut led, Query::Component(v)).unwrap();
    }
    srv.drain(&mut led);
    srv.take_ready();
    let cold = srv.cache_stats();
    assert_eq!(cold.entries, N as u64);
    assert_eq!(cold.misses, N as u64);

    // Stage on its own ledger (the stage bill is the extend_overlay
    // contract, pinned by the connectivity crate's own tests), then
    // install on a fresh ledger so the sweep bill is isolated.
    let mut stage_led = Ledger::new(OMEGA);
    srv.stage_delta(
        &mut stage_led,
        &GraphDelta::from_edges(vec![(3, BLOCK + 3)]),
    );
    let mut install_led = Ledger::new(OMEGA);
    assert_eq!(srv.install_staged(&mut install_led), Some(1));

    // Hand-compute `removed`: a cached id (epoch-0 canonical, i.e. the
    // oracle's base id) is stale iff the new overlay remaps it.
    let overlay = srv.current_overlay().clone();
    let mut probe_led = Ledger::new(OMEGA);
    let handle = conn.query_handle();
    let removed = (0..N)
        .filter(|&v| {
            let id = handle.component(&mut probe_led, v);
            overlay.peek(id) != id
        })
        .count() as u64;
    assert!(removed > 0, "the merge must remap someone");
    assert!(
        removed < N as u64,
        "the merge must not remap everyone (block 2 is untouched)"
    );

    let swept = cold.entries; // every resident slot is inspected once
    let costs = install_led.costs();
    assert_eq!(
        costs,
        Costs {
            asym_reads: 0,
            asym_writes: removed * INVALIDATE_ENTRY_WRITES,
            sym_ops: EPOCH_INSTALL_OPS + swept * INVALIDATE_SCAN_OPS,
        },
        "install bill = pointer swap + priced sweep, nothing else"
    );

    let stats = srv.epoch_stats();
    assert_eq!(stats.invalidation_swept_slots, swept);
    assert_eq!(stats.invalidated_entries, removed);
    let after = srv.cache_stats();
    assert_eq!(after.invalidations, removed);
    assert_eq!(after.entries, N as u64 - removed);

    // Warm replay: survivors hit, exactly the invalidated vertices miss
    // and refill — each refill resolves through the (non-empty) overlay,
    // charging one extra OVERLAY_LOOKUP_READS on top of the miss cost.
    let mut warm_led = Ledger::new(OMEGA);
    for v in 0..N {
        srv.submit(&mut warm_led, Query::Component(v)).unwrap();
    }
    srv.drain(&mut warm_led);
    srv.take_ready();
    let warm = srv.cache_stats();
    assert_eq!(warm.hits - after.hits, N as u64 - removed, "survivors hit");
    assert_eq!(warm.misses - after.misses, removed, "stale entries refill");
    assert_eq!(warm.entries, N as u64, "cache is whole again");

    // Price the overlay resolutions: re-run the same warm pass on the
    // now-fully-warm cache (all hits), and diff against a pure-hit pass.
    // The difference between the two passes is exactly the `removed`
    // misses' one-by-one costs plus one overlay lookup each; checking the
    // lookup reads alone keeps this robust to per-vertex query costs.
    let mut miss_reads = 0u64;
    for v in 0..N {
        let id = handle.component(&mut probe_led, v);
        if overlay.peek(id) != id {
            let mut one = Ledger::new(OMEGA);
            handle.component(&mut one, v);
            miss_reads += one.costs().asym_reads + OVERLAY_LOOKUP_READS;
        }
    }
    let warm_reads = warm_led.costs().asym_reads;
    // warm pass reads = per-query input scan + per-query probe + miss
    // recompute reads (with their overlay lookups).
    let scan_and_probe = N as u64 * (wec::serve::QUERY_WORDS + wec::serve::CACHE_PROBE_READS);
    assert_eq!(
        warm_reads,
        scan_and_probe + miss_reads,
        "refill reads = miss recompute + one overlay lookup each"
    );
}

#[test]
fn mutation_costs_bit_identical_across_parallelism() {
    let g = test_graph();
    let pri = Priorities::random(g.n(), 17);
    let verts: Vec<Vertex> = (0..N).collect();
    let conn = build_conn(&g, &pri, &verts);

    let run = |mut led: Ledger| {
        let mut srv = StreamingServer::new(
            ShardedServer::new(conn.query_handle(), SHARDS),
            manual_policy(64),
        );
        for v in 0..N {
            srv.submit(&mut led, Query::Component(v)).unwrap();
        }
        srv.flush(&mut led);
        srv.stage_delta(&mut led, &GraphDelta::from_edges(vec![(3, BLOCK + 3)]));
        // Submissions during the staged window serve the old epoch.
        for v in 0..N / 2 {
            srv.submit(&mut led, Query::Connected(v, N - 1 - v))
                .unwrap();
        }
        srv.install_staged(&mut led);
        for v in 0..N / 2 {
            srv.submit(&mut led, Query::Connected(v, N - 1 - v))
                .unwrap();
        }
        srv.drain(&mut led);
        let answers: Vec<(u64, _)> = srv
            .take_ready()
            .into_iter()
            .map(|(t, a)| (t.id(), a))
            .collect();
        let s = srv.cache_stats();
        let e = srv.epoch_stats();
        (
            answers,
            (s.hits, s.misses, s.inserts, s.evictions, s.invalidations),
            e,
            led.costs(),
            led.depth(),
            led.sym_peak(),
        )
    };
    let par = run(Ledger::new(OMEGA));
    let seq = run(Ledger::sequential(OMEGA));
    assert_eq!(
        par, seq,
        "mutation path not bit-identical across parallelism"
    );
}

#[test]
fn staged_batches_compose_and_empty_delta_is_free() {
    let g = test_graph();
    let pri = Priorities::random(g.n(), 19);
    let verts: Vec<Vertex> = (0..N).collect();
    let conn = build_conn(&g, &pri, &verts);
    let mut srv = StreamingServer::new(
        ShardedServer::new(conn.query_handle(), SHARDS),
        manual_policy(1 << 10),
    );
    let mut led = Ledger::new(OMEGA);

    // Two staged batches, one install: both merges land in epoch 1.
    srv.stage_delta(&mut led, &GraphDelta::from_edges(vec![(0, BLOCK)]));
    srv.stage_delta(&mut led, &GraphDelta::from_edges(vec![(BLOCK, 2 * BLOCK)]));
    assert_eq!(srv.install_staged(&mut led), Some(1));
    assert_eq!(srv.epoch_stats().staged_batches, 2);
    assert_eq!(srv.epoch_stats().installs, 1);

    let t = srv
        .submit(&mut led, Query::Connected(0, 2 * BLOCK + 5))
        .unwrap();
    srv.drain(&mut led);
    let (got, r) = srv.take_ready().pop().unwrap();
    assert_eq!(got, t);
    assert!(unwrap_connected(&r), "both staged merges are in epoch 1");

    // An empty delta with nothing staged: no charge, no epoch change.
    let mut free = Ledger::new(OMEGA);
    assert_eq!(srv.apply_delta(&mut free, &GraphDelta::new()), 1);
    assert_eq!(free.costs(), Costs::ZERO);
    assert_eq!(srv.epoch_stats().installs, 1);

    // install with nothing staged is None and also free.
    assert_eq!(srv.install_staged(&mut free), None);
    assert_eq!(free.costs(), Costs::ZERO);
}

#[test]
fn predicates_keep_base_graph_semantics_across_installs() {
    let g = test_graph();
    let pri = Priorities::random(g.n(), 23);
    let verts: Vec<Vertex> = (0..N).collect();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let conn =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 5, OracleBuildOpts::default());
    let bicon = build_biconnectivity_oracle(&mut led, &g, &pri, &verts, k, 5, BuildOpts::default());
    let mut srv = StreamingServer::new(
        ShardedServer::new(conn.query_handle(), SHARDS).with_biconnectivity(bicon.query_handle()),
        manual_policy(1 << 10),
    );

    let ask = |srv: &mut wec::serve::FullStreamingServer<'_, '_, Csr>, led: &mut Ledger| {
        let t2 = srv.submit(led, Query::TwoEdgeConnected(0, BLOCK)).unwrap();
        let tc = srv.submit(led, Query::Connected(0, BLOCK)).unwrap();
        srv.drain(led);
        let out = srv.take_ready();
        assert_eq!((out[0].0, out[1].0), (t2, tc));
        let two_edge = match out[0].1 {
            Ok(Answer::TwoEdgeConnected(b)) => b,
            ref other => panic!("expected TwoEdgeConnected, got {other:?}"),
        };
        (two_edge, unwrap_connected(&out[1].1))
    };

    let (two_edge_before, conn_before) = ask(&mut srv, &mut led);
    assert!(!two_edge_before && !conn_before);

    srv.apply_delta(&mut led, &GraphDelta::from_edges(vec![(BLOCK - 1, BLOCK)]));

    let (two_edge_after, conn_after) = ask(&mut srv, &mut led);
    assert!(
        conn_after,
        "connectivity answers see the mutation through the overlay"
    );
    assert!(
        !two_edge_after,
        "predicates answer the base graph: the insertion-only model \
         does not re-derive biconnectivity (documented limitation)"
    );
}
