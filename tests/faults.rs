//! The fault-injection, panic-isolation, and recovery contracts of PR 6:
//!
//! 1. **the acceptance claim** — a seeded 1%-per-shard panic plan on the
//!    94%-hot streaming workload still answers 100% of submitted queries,
//!    delivers tickets in submission order, and charges bit-identical
//!    costs on repeated runs (the plan is a pure function of the seed);
//! 2. a fault plan with every knob at zero charges **bit-identically** to
//!    no plan at all — the hook is free when disabled;
//! 3. the circuit breaker lifecycle: a shard that panics on every
//!    dispatch trips after the threshold, is excluded from routing while
//!    open, re-enters as a half-open probe after the cooldown, and
//!    re-trips on probe failure — while every query is still answered;
//! 4. an intermittently-failing shard is eventually *restored*: a
//!    successful half-open probe closes the breaker again;
//! 5. cache-lock poisoning (a panic thrown while holding the shard-cache
//!    mutex) is recovered — poison cleared, cache reset cold, counter
//!    incremented — instead of cascading `PoisonError` panics;
//! 6. **satellite 3** — `Overflow::Shed` rejects at the `max_queue` bound
//!    with a typed `ServeError::Overloaded` *before* a ticket is issued,
//!    so shed traffic leaves ticketing dense and delivery in order;
//! 7. **satellite 4** — a randomized interleaving of submits, partial
//!    flushes, early consumption, and fault plans never reorders or
//!    drops a ticket, and every delivered answer matches the
//!    fault-free reference;
//! 8. the op-budget admission knob sizes micro-batches by the documented
//!    `query_work_estimate` formula.
//!
//! CI runs this file under `WEC_THREADS ∈ {1, 2, 8, 16}`: every charge
//! and every fault decision must be schedule-independent.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wec::asym::{Costs, Ledger};
use wec::biconnectivity::oracle::build_biconnectivity_oracle;
use wec::biconnectivity::BiconnectivityOracle;
use wec::connectivity::{ConnectivityOracle, OracleBuildOpts};
use wec::core::BuildOpts;
use wec::graph::{gen, Csr, Priorities, Vertex};
use wec::serve::{
    query_work_estimate, AdmissionPolicy, BreakerState, Eviction, FaultPlan, FullStreamingServer,
    Overflow, Query, RecoveryPolicy, RobustnessStats, Routing, ServeError, ServeResult,
    ShardedServer, StreamingServer, Ticket,
};

const OMEGA: u64 = 64;
const SHARDS: usize = 4;

/// Injected panics are expected here; keep `cargo test` output readable
/// while still reporting genuine (assertion) panics.
fn silence_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn test_graph() -> Csr {
    gen::disjoint_union(&[
        &gen::bounded_degree_connected(700, 4, 150, 11),
        &gen::grid(8, 9),
        &gen::path(13),
        &Csr::from_edges(4, &[]),
    ])
}

fn build_oracles<'g>(
    g: &'g Csr,
    pri: &'g Priorities,
    verts: &'g [Vertex],
) -> (ConnectivityOracle<'g, Csr>, BiconnectivityOracle<'g, Csr>) {
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let conn = ConnectivityOracle::build(&mut led, g, pri, verts, k, 5, OracleBuildOpts::default());
    let bicon = build_biconnectivity_oracle(&mut led, g, pri, verts, k, 5, BuildOpts::default());
    (conn, bicon)
}

fn streaming_server<'o, 'g>(
    conn: &'o ConnectivityOracle<'g, Csr>,
    bicon: &'o BiconnectivityOracle<'g, Csr>,
    policy: AdmissionPolicy,
) -> FullStreamingServer<'o, 'g, Csr> {
    let sharded =
        ShardedServer::new(conn.query_handle(), SHARDS).with_biconnectivity(bicon.query_handle());
    StreamingServer::new(sharded, policy)
}

/// The PR-4 acceptance workload: ~94.1% of queries hit a 64-key hot set,
/// the rest are one-shot junk spread over the remaining vertices.
fn hot_stream(n: u32, len: usize) -> Vec<Query> {
    const HOT: u32 = 64;
    let mut v = 0x94u32;
    let mut step = move || {
        v = v.wrapping_mul(2654435761).wrapping_add(12345);
        v
    };
    (0..len)
        .map(|_| {
            let r = step();
            let x = step();
            if r % 256 < 241 {
                Query::Component(x % HOT)
            } else {
                Query::Component(HOT + x % (n - HOT))
            }
        })
        .collect()
}

/// Deterministic mixed stream over a narrow range — same generator family
/// as the other serving tests.
fn mixed_stream(range: u32, len: usize, salt: u32) -> Vec<Query> {
    let mut v = salt;
    let mut step = move || {
        v = v.wrapping_mul(2654435761).wrapping_add(12345);
        v
    };
    (0..len)
        .map(|_| {
            let r = step();
            let a = step() % range;
            let b = (step() >> 7) % range;
            match r % 6 {
                0 | 1 => Query::Connected(a, b),
                2 | 3 => Query::Component(a),
                4 => Query::TwoEdgeConnected(a, b),
                _ => Query::Biconnected(a, b),
            }
        })
        .collect()
}

/// Run `stream` through a streaming server configured by `policy`,
/// `plan`, and `recovery`; return the delivered `(ticket, result)` pairs
/// (in delivery order), the total charged costs, and the robustness
/// counters.
fn run_stream(
    conn: &ConnectivityOracle<'_, Csr>,
    bicon: &BiconnectivityOracle<'_, Csr>,
    policy: AdmissionPolicy,
    plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
    stream: &[Query],
) -> (Vec<(Ticket, ServeResult)>, Costs, RobustnessStats) {
    let mut srv = streaming_server(conn, bicon, policy).with_recovery(recovery);
    if let Some(p) = plan {
        srv = srv.with_fault_plan(p);
    }
    let mut led = Ledger::new(OMEGA);
    for &q in stream {
        srv.submit(&mut led, q).unwrap();
    }
    srv.drain(&mut led);
    let out = srv.take_ready();
    (out, led.costs(), srv.robustness_stats())
}

/// Delivered tickets must be exactly `0, 1, 2, …` — dense and in
/// submission order — and every slot must carry a result.
fn assert_in_order(out: &[(Ticket, ServeResult)], expect_len: usize) {
    assert_eq!(out.len(), expect_len, "every submitted query is delivered");
    for (i, (t, _)) in out.iter().enumerate() {
        assert_eq!(t.id(), i as u64, "tickets delivered in submission order");
    }
}

/// **Acceptance criterion of PR 6**: a seeded 1% per-(dispatch, shard)
/// panic plan — with retry-ladder failures layered on top — on the
/// 94%-hot workload answers **100%** of queries, in ticket order, with
/// every delivered answer equal to the fault-free reference, and charges
/// bit-identical costs when the identical run is repeated.
#[test]
fn seeded_panic_plan_answers_everything_in_order() {
    silence_panics();
    let g = test_graph();
    let n = g.n() as u32;
    let pri = Priorities::random(n as usize, 11);
    let verts: Vec<Vertex> = (0..n).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);
    let stream = hot_stream(n, 4000);

    let policy = || {
        AdmissionPolicy::builder()
            .max_batch(64)
            .max_queue(64)
            .cache_capacity(32)
            .routing(Routing::Affinity { skew_factor: 4 })
            .eviction(Eviction::Clock)
            .build()
    };
    let plan = FaultPlan::seeded(0xF417)
        .with_panic_per_mille(10)
        .with_retry_fail_per_mille(250);

    let run = || {
        run_stream(
            &conn,
            &bicon,
            policy(),
            Some(plan),
            RecoveryPolicy::default(),
            &stream,
        )
    };
    let (out, costs, stats) = run();
    assert_in_order(&out, stream.len());

    // The plan actually fired — otherwise this test proves nothing.
    assert!(stats.panics_caught > 0, "1% plan must hit a 63-batch run");
    assert_eq!(stats.shards_quarantined, stats.panics_caught);
    assert!(
        stats.degraded_answers > 0,
        "recovered queries were recomputed"
    );
    assert!(
        stats.retries >= stats.panics_caught,
        "every recovery charges at least one backoff rung"
    );

    // Every delivered answer matches the fault-free reference server.
    let reference =
        ShardedServer::new(conn.query_handle(), SHARDS).with_biconnectivity(bicon.query_handle());
    let mut scratch = Ledger::new(OMEGA);
    for (i, (_, r)) in out.iter().enumerate() {
        let want = reference.try_answer_one(&mut scratch, stream[i]);
        assert_eq!(*r, want, "query {i} answered correctly despite faults");
    }

    // Determinism: the identical seeded run charges bit-identical costs
    // and reproduces the exact same fault history.
    let (out2, costs2, stats2) = run();
    assert_eq!(costs, costs2, "seeded fault runs are bit-reproducible");
    assert_eq!(stats, stats2, "fault history is a pure function of seed");
    assert_eq!(out, out2, "delivered stream is identical");
}

/// A plan with every knob at zero — and no plan at all — charge
/// bit-identically: the fault hook costs nothing when disabled.
#[test]
fn zero_knob_plan_charges_identically_to_no_plan() {
    let g = test_graph();
    let n = g.n() as u32;
    let pri = Priorities::random(n as usize, 11);
    let verts: Vec<Vertex> = (0..n).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);
    let stream = mixed_stream(n, 900, 0xBEEF);

    let policy = || {
        AdmissionPolicy::builder()
            .max_batch(48)
            .max_queue(48)
            .cache_capacity(64)
            .routing(Routing::Affinity { skew_factor: 4 })
            .eviction(Eviction::Clock)
            .build()
    };
    let quiet = FaultPlan::seeded(123);
    assert!(!quiet.injects_anything());

    let recovery = RecoveryPolicy::default();
    let (out_none, costs_none, stats_none) =
        run_stream(&conn, &bicon, policy(), None, recovery, &stream);
    let (out_quiet, costs_quiet, stats_quiet) =
        run_stream(&conn, &bicon, policy(), Some(quiet), recovery, &stream);

    assert_eq!(costs_none, costs_quiet, "disabled plan is cost-free");
    assert_eq!(out_none, out_quiet, "and answer-identical");
    assert_eq!(stats_none, RobustnessStats::default(), "nothing happened");
    assert_eq!(stats_quiet, RobustnessStats::default());
}

/// Breaker lifecycle against a shard that panics on **every** dispatch:
/// trips at the threshold, is excluded while open (surviving shards keep
/// answering), re-enters as a half-open probe after the cooldown, and
/// re-trips when the probe fails — with 100% of queries still answered
/// in order.
#[test]
fn breaker_trips_excludes_and_reprobes_a_dead_shard() {
    silence_panics();
    let g = test_graph();
    let n = g.n() as u32;
    let pri = Priorities::random(n as usize, 11);
    let verts: Vec<Vertex> = (0..n).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);
    let stream = hot_stream(n, 1200);

    let policy = AdmissionPolicy::builder()
        .max_batch(16)
        .max_queue(16)
        .cache_capacity(32)
        .routing(Routing::Affinity { skew_factor: 4 })
        .eviction(Eviction::Clock)
        .build();
    let recovery = RecoveryPolicy::default()
        .with_breaker_threshold(2)
        .with_breaker_cooldown(3);
    // Shard 0 dies on every dispatch it participates in; other shards
    // never fault.
    let plan = FaultPlan::seeded(7)
        .with_panic_per_mille(1000)
        .with_target_shard(0);

    let mut srv = streaming_server(&conn, &bicon, policy)
        .with_recovery(recovery)
        .with_fault_plan(plan);
    let mut led = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut led, q).unwrap();
    }
    srv.drain(&mut led);
    let out = srv.take_ready();
    assert_in_order(&out, stream.len());
    assert!(
        out.iter().all(|(_, r)| r.is_ok()),
        "component queries all answerable"
    );

    let stats = srv.robustness_stats();
    let h0 = srv.shard_health(0);
    assert!(
        h0.trips >= 2,
        "tripped, probed, re-tripped (got {})",
        h0.trips
    );
    assert!(
        matches!(h0.state, BreakerState::Open | BreakerState::HalfOpen),
        "a 100%-dead shard never closes again"
    );
    assert!(stats.half_open_probes >= 1, "cooldown re-probed the shard");
    assert_eq!(stats.breaker_trips, h0.trips, "only shard 0 ever trips");
    assert_eq!(stats.shards_restored, 0, "probe failure never restores");
    for s in 1..SHARDS {
        let h = srv.shard_health(s);
        assert_eq!(h.state, BreakerState::Closed, "shard {s} stays healthy");
        assert_eq!(h.trips, 0);
    }
    // While the breaker was open the batch partitioned over the three
    // survivors; the quarantine count bounds how often shard 0 actually
    // ran (and died). Far fewer than the dispatch count ⇒ exclusion
    // worked.
    assert!(
        stats.shards_quarantined < srv.dispatches(),
        "open breaker keeps the dead shard out of most dispatches \
         ({} quarantines over {} dispatches)",
        stats.shards_quarantined,
        srv.dispatches()
    );
}

/// An intermittently-failing shard is eventually restored: some half-open
/// probe lands on a dispatch where the plan does not fire, the probe
/// serves its chunk, and the breaker closes again.
#[test]
fn half_open_probe_success_restores_the_shard() {
    silence_panics();
    let g = test_graph();
    let n = g.n() as u32;
    let pri = Priorities::random(n as usize, 11);
    let verts: Vec<Vertex> = (0..n).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);
    let stream = hot_stream(n, 2000);

    let policy = AdmissionPolicy::builder()
        .max_batch(16)
        .max_queue(16)
        .cache_capacity(32)
        .routing(Routing::Affinity { skew_factor: 4 })
        .eviction(Eviction::Clock)
        .build();
    let recovery = RecoveryPolicy::default()
        .with_breaker_threshold(2)
        .with_breaker_cooldown(2);
    // Shard 0 fails roughly a third of its dispatches: streaks trip the
    // breaker, and quiet stretches let probes succeed.
    let plan = FaultPlan::seeded(21)
        .with_panic_per_mille(350)
        .with_target_shard(0);

    let mut srv = streaming_server(&conn, &bicon, policy)
        .with_recovery(recovery)
        .with_fault_plan(plan);
    let mut led = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut led, q).unwrap();
    }
    srv.drain(&mut led);
    assert_in_order(&srv.take_ready(), stream.len());

    let stats = srv.robustness_stats();
    assert!(stats.breaker_trips >= 1, "35% failure must streak past 2");
    assert!(
        stats.shards_restored >= 1,
        "a quiet probe must close the breaker again \
         (trips {}, probes {}, restored {})",
        stats.breaker_trips,
        stats.half_open_probes,
        stats.shards_restored
    );
}

/// A panic thrown while holding the shard-cache mutex genuinely poisons
/// the lock; quarantine must clear the poison, reset the cache cold, and
/// count the recovery — never propagate a `PoisonError`.
#[test]
fn poisoned_cache_lock_is_cleared_and_counted() {
    silence_panics();
    let g = test_graph();
    let n = g.n() as u32;
    let pri = Priorities::random(n as usize, 11);
    let verts: Vec<Vertex> = (0..n).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);
    let stream = hot_stream(n, 600);

    let policy = AdmissionPolicy::builder()
        .max_batch(16)
        .max_queue(16)
        .cache_capacity(32)
        .routing(Routing::Affinity { skew_factor: 4 })
        .eviction(Eviction::Clock)
        .build();
    let plan = FaultPlan::seeded(5)
        .with_poison_per_mille(120)
        .with_target_shard(1);

    let mut srv = streaming_server(&conn, &bicon, policy)
        .with_recovery(RecoveryPolicy::default().with_breaker_threshold(0))
        .with_fault_plan(plan);
    let mut led = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut led, q).unwrap();
    }
    srv.drain(&mut led);
    assert_in_order(&srv.take_ready(), stream.len());

    let stats = srv.robustness_stats();
    assert!(stats.panics_caught >= 1, "poison plan fired");
    assert_eq!(
        stats.lock_poison_recoveries, stats.panics_caught,
        "every poison panic held the guard, so every quarantine cleared poison"
    );
    // Exact accounting across quarantines: a poison fault fires before
    // any probe, so the retired-plus-current cache history holds exactly
    // one probe per query served through the cached path — everything
    // except the degraded recomputes.
    let total = srv.cache_stats();
    assert_eq!(
        total.hits + total.misses,
        stream.len() as u64 - stats.degraded_answers,
        "cache counters stay monotone and exact across quarantines"
    );
    // And the recovered lock is usable: this would wedge on poison.
    let _ = srv.shard_cache_stats(1);
}

/// **Satellite 3**: `Overflow::Shed` rejects at the bound with a typed
/// error and *no ticket*, so the accepted tickets stay dense `0..k` and
/// delivery order is untouched by any amount of shed traffic.
#[test]
fn shed_overflow_rejects_without_consuming_tickets() {
    let g = test_graph();
    let n = g.n() as u32;
    let pri = Priorities::random(n as usize, 11);
    let verts: Vec<Vertex> = (0..n).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let policy = AdmissionPolicy::builder()
        .max_batch(64)
        .max_queue(4)
        .overflow(Overflow::Shed)
        .build();
    let mut srv = streaming_server(&conn, &bicon, policy);
    let mut led = Ledger::new(OMEGA);

    let stream = mixed_stream(n, 24, 0x0517);
    let mut accepted: Vec<(Ticket, Query)> = Vec::new();
    let mut shed = 0usize;
    for (i, &q) in stream.iter().enumerate() {
        match srv.submit(&mut led, q) {
            Ok(t) => accepted.push((t, q)),
            Err(e) => {
                assert_eq!(
                    e,
                    ServeError::Overloaded {
                        queue_len: 4,
                        max_queue: 4
                    },
                    "typed rejection carries the observed depth and bound"
                );
                shed += 1;
            }
        }
        // Drain every 7th submission so acceptance resumes mid-stream.
        if i % 7 == 6 {
            srv.drain(&mut led);
        }
    }
    assert!(shed > 0, "the bound was actually hit");
    assert_eq!(srv.robustness_stats().sheds, shed as u64);

    srv.drain(&mut led);
    let out = srv.take_ready();
    assert_eq!(
        out.len(),
        accepted.len(),
        "exactly the accepted set delivers"
    );
    let reference =
        ShardedServer::new(conn.query_handle(), SHARDS).with_biconnectivity(bicon.query_handle());
    let mut scratch = Ledger::new(OMEGA);
    for (i, ((t, r), (t_acc, q))) in out.iter().zip(&accepted).enumerate() {
        assert_eq!(t.id(), i as u64, "accepted tickets are dense from 0");
        assert_eq!(t.id(), t_acc.id(), "delivery order = acceptance order");
        assert_eq!(*r, reference.try_answer_one(&mut scratch, *q));
    }
}

/// **Satellite 4**: randomized interleavings of submits, partial flushes,
/// early consumption (`try_next`/`take_ready`), shed overflow, and seeded
/// fault plans — across many RNG seeds — never break the ticket
/// contract: delivered ids are exactly `0..accepted`, strictly in order,
/// and every answer equals the fault-free reference.
#[test]
fn ticket_order_survives_random_interleavings_of_faults() {
    silence_panics();
    let g = test_graph();
    let n = g.n() as u32;
    let pri = Priorities::random(n as usize, 11);
    let verts: Vec<Vertex> = (0..n).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);
    let reference =
        ShardedServer::new(conn.query_handle(), SHARDS).with_biconnectivity(bicon.query_handle());

    for case in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0xFA171E ^ case);
        let overflow = if rng.gen_bool(0.5) {
            Overflow::Shed
        } else {
            Overflow::DispatchInline
        };
        let policy = AdmissionPolicy::builder()
            .max_batch(rng.gen_range(1..24))
            .max_queue(rng.gen_range(2..32))
            .cache_capacity([0, 8, 64][rng.gen_range(0..3)])
            .routing(if rng.gen_bool(0.5) {
                Routing::Affinity { skew_factor: 4 }
            } else {
                Routing::Contiguous
            })
            .eviction(if rng.gen_bool(0.5) {
                Eviction::Clock
            } else {
                Eviction::FillUntilFull
            })
            .overflow(overflow)
            .build();
        let plan = FaultPlan::seeded(rng.gen::<u64>())
            .with_panic_per_mille(rng.gen_range(0..80))
            .with_poison_per_mille(rng.gen_range(0..40))
            .with_retry_fail_per_mille(rng.gen_range(0..500));
        let recovery = RecoveryPolicy::default()
            .with_breaker_threshold(rng.gen_range(0..4))
            .with_breaker_cooldown(rng.gen_range(1..6));

        let mut srv = streaming_server(&conn, &bicon, policy)
            .with_recovery(recovery)
            .with_fault_plan(plan);
        let mut led = Ledger::new(OMEGA);
        let stream = mixed_stream(n, 300, 0x600D + case as u32);
        let mut accepted: Vec<Query> = Vec::new();
        let mut delivered: Vec<(Ticket, ServeResult)> = Vec::new();
        for &q in &stream {
            if let Ok(_t) = srv.submit(&mut led, q) {
                accepted.push(q);
            }
            match rng.gen_range(0..8u32) {
                0 => {
                    srv.flush(&mut led);
                }
                1 => delivered.extend(srv.take_ready()),
                2 => delivered.extend(srv.try_next()),
                3 => {
                    srv.drain(&mut led);
                }
                _ => {}
            }
        }
        srv.drain(&mut led);
        delivered.extend(srv.take_ready());

        assert_eq!(
            delivered.len(),
            accepted.len(),
            "case {case}: every accepted query is delivered exactly once"
        );
        let mut scratch = Ledger::new(OMEGA);
        for (i, (t, r)) in delivered.iter().enumerate() {
            assert_eq!(t.id(), i as u64, "case {case}: strict ticket order");
            let want = reference.try_answer_one(&mut scratch, accepted[i]);
            assert_eq!(*r, want, "case {case}: answer matches reference");
        }
    }
}

/// The op-budget admission knob sizes micro-batches so a batch's
/// worst-case estimated work stays within budget: a budget of exactly
/// three homogeneous queries' estimates yields ⌈n/3⌉ dispatches, and a
/// starvation-proof budget smaller than one query still makes progress
/// one query at a time.
#[test]
fn op_budget_sizes_batches_by_the_estimate() {
    let g = test_graph();
    let n = g.n() as u32;
    let pri = Priorities::random(n as usize, 11);
    let verts: Vec<Vertex> = (0..n).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let per_query = query_work_estimate(Query::Component(0), OMEGA);
    let stream: Vec<Query> = (0..10).map(|v| Query::Component(v % n)).collect();

    let dispatches_with = |op_budget: u64| {
        let policy = AdmissionPolicy::builder()
            .max_batch(64)
            .max_queue(64)
            .cache_capacity(16)
            .op_budget(op_budget)
            .build();
        let mut srv = streaming_server(&conn, &bicon, policy);
        let mut led = Ledger::new(OMEGA);
        for &q in &stream {
            srv.submit(&mut led, q).unwrap();
        }
        srv.drain(&mut led);
        assert_in_order(&srv.take_ready(), stream.len());
        srv.dispatches()
    };

    assert_eq!(dispatches_with(3 * per_query), 4, "⌈10/3⌉ micro-batches");
    assert_eq!(dispatches_with(1), 10, "a tiny budget still admits one");
    assert_eq!(dispatches_with(0), 1, "budget 0 = unlimited (one batch)");
}
