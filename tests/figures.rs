//! Reproductions of the paper's worked figures.
//!
//! * **Figure 1**: an implicit 4-decomposition of a 12-vertex
//!   bounded-degree graph — we rebuild the figure's graph (vertices a..l →
//!   0..11, edges read off the drawing) and check the decomposition
//!   invariants the figure illustrates, including the "first center on the
//!   shortest path to the nearest primary center" rule.
//! * **Figure 2**: the BC labeling example — a 9-vertex graph with
//!   biconnected components {1,2,3,4,6,7}, {2,5}, {6,8,9} (1-indexed),
//!   bridge (2,5) and articulation points {2,6}. The paper's l/r arrays
//!   depend on its specific spanning tree; we check the
//!   representation-independent content: the BCC partition, heads,
//!   bridges, and articulation points.

use wec::asym::Ledger;
use wec::biconnectivity::bc_labeling;
use wec::core::{BuildOpts, Center, ImplicitDecomposition};
use wec::graph::{Csr, Priorities, Vertex};

/// Figure 1's graph: 12 vertices a..l = 0..11. Edges transcribed from the
/// drawing: clusters {d,h,l}, {i,j,b}, {e,f}, {a,c,g,k} connected as shown
/// (d−h, h−l, h−j, j−i, i−c... ). The exact drawing is reproduced in
/// `wec-bench`'s `fig1_decomposition` binary; here we need a connected
/// bounded-degree 12-vertex graph consistent with it.
fn fig1_graph() -> Csr {
    const A: u32 = 0;
    const B: u32 = 1;
    const C: u32 = 2;
    const D: u32 = 3;
    const E: u32 = 4;
    const F: u32 = 5;
    const G: u32 = 6;
    const H: u32 = 7;
    const I: u32 = 8;
    const J: u32 = 9;
    const K: u32 = 10;
    const L: u32 = 11;
    Csr::from_edges(
        12,
        &[
            (D, H),
            (H, L),
            (H, J),
            (J, I),
            (J, B),
            (I, C),
            (B, E),
            (E, F),
            (F, K),
            (C, G),
            (C, K),
            (G, K),
            (G, A),
        ],
    )
}

#[test]
fn figure1_decomposition_invariants() {
    let g = fig1_graph();
    let pri = Priorities::identity(12); // "lower letters have higher priorities"
    let verts: Vec<Vertex> = (0..12).collect();
    for seed in 0..10u64 {
        let mut led = Ledger::new(16);
        let d =
            ImplicitDecomposition::build(&mut led, &g, &pri, &verts, 4, seed, BuildOpts::default());
        // Theorem 3.1 structure: partition into connected clusters ≤ 4.
        let mut sizes: std::collections::HashMap<Vertex, usize> = Default::default();
        for v in 0..12u32 {
            let a = d.rho(&mut led, v);
            *sizes.entry(a.center.vertex()).or_default() += 1;
            // the parent hop is the second vertex of SP(v, ρ(v))
            if a.dist > 0 {
                assert!(g.neighbors(v).contains(&a.parent_hop));
            }
        }
        assert_eq!(sizes.values().sum::<usize>(), 12);
        for (&c, &sz) in &sizes {
            assert!(sz <= 4, "cluster {c} has {sz} > k = 4 (seed {seed})");
            let cl = d.cluster(&mut led, c);
            assert_eq!(cl.members.len(), sz);
            assert!(wec::graph::props::induced_connected(&g, &cl.members));
        }
        // 1-bit labels: every stored center is either primary or secondary.
        assert!(d
            .centers()
            .iter()
            .all(|&c| d.center_label(&mut led, c).is_some()));
    }
}

#[test]
fn figure1_secondary_center_rule() {
    // The figure's key subtlety: a vertex keeps its *primary* cluster even
    // when a secondary center of another cluster is closer, because ρ only
    // considers centers on the path to the nearest primary. Reproduce the
    // shape with explicit centers on a path: p=0 primary, s=3 secondary.
    use wec::core::{CenterLabel, CenterSet};
    let g = wec::graph::gen::path(7);
    let pri = Priorities::identity(7);
    let mut led = Ledger::new(16);
    let mut cs = CenterSet::with_capacity(&mut led, 4);
    cs.insert(&mut led, 0, CenterLabel::Primary);
    cs.insert(&mut led, 3, CenterLabel::Secondary);
    // vertex 2: path to primary 0 = [2,1,0]; the nearer secondary 3 is NOT
    // on that path, so ρ(2) = 0.
    let a = wec::core::rho::rho(&mut led, &g, &pri, &cs, 2);
    assert_eq!(a.center, Center::Stored(0));
    // vertex 5: path to 0 passes 3 first, so ρ(5) = 3.
    let b = wec::core::rho::rho(&mut led, &g, &pri, &cs, 5);
    assert_eq!(b.center, Center::Stored(3));
}

/// Figure 2's structure: BCCs {1,2,3,4,6,7}, {2,5}, {6,8,9} (1-indexed).
fn fig2_graph() -> Csr {
    // 0-indexed: big BCC on {0,1,2,3,5,6}: cycle 0-1-2-3-5-6-0 + chord 1-5;
    // bridge (1,4); triangle {5,7,8}.
    Csr::from_edges(
        9,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 5),
            (5, 6),
            (6, 0),
            (1, 5),
            (1, 4),
            (5, 7),
            (7, 8),
            (8, 5),
        ],
    )
}

#[test]
fn figure2_bc_labeling_content() {
    let g = fig2_graph();
    let mut led = Ledger::new(16);
    let bc = bc_labeling(&mut led, &g, 0.25, 3);
    // three biconnected components
    assert_eq!(bc.num_bcc, 3);
    // bridges: exactly (1,4)  [paper: (2,5) 1-indexed]
    let bridges: Vec<(Vertex, Vertex)> = (0..g.m() as u32)
        .filter(|&e| bc.is_bridge(&mut led, e, &g))
        .map(|e| g.edge(e))
        .collect();
    assert_eq!(bridges, vec![(1, 4)]);
    // articulation points: exactly {1, 5}  [paper: {2, 6}]
    let artic: Vec<Vertex> = (0..9u32)
        .filter(|&v| bc.is_articulation(&mut led, v))
        .collect();
    assert_eq!(artic, vec![1, 5]);
    // BCC vertex sets via same-BCC equivalence
    let big = [0u32, 1, 2, 3, 5, 6];
    for &u in &big {
        for &v in &big {
            assert!(
                bc.same_bcc(&mut led, u, v),
                "({u},{v}) in the big component"
            );
        }
    }
    for &(u, v) in &[(1u32, 4u32), (5, 7), (5, 8), (7, 8)] {
        assert!(bc.same_bcc(&mut led, u, v));
    }
    assert!(!bc.same_bcc(&mut led, 4, 0));
    assert!(!bc.same_bcc(&mut led, 7, 1));
    assert!(!bc.same_bcc(&mut led, 4, 7));
    // the paper's "implicit standard output": per-edge labels in O(1)
    let l_edge: Vec<u32> = (0..g.m() as u32)
        .map(|e| bc.edge_bcc(&mut led, e, &g))
        .collect();
    let bridge_eid = g.edges().iter().position(|&e| e == (1, 4)).unwrap();
    assert!(l_edge.iter().filter(|&&l| l == l_edge[bridge_eid]).count() == 1);
}

#[test]
fn figure3_local_graph_shape() {
    // Figure 3 illustrates a cluster's local graph: internal edges, tree
    // edges to neighbor clusters, same-label neighbors chained, external
    // non-tree edges redirected. We reproduce the *shape* on a concrete
    // decomposition and check Definition 4's properties.
    use wec::biconnectivity::oracle::build_biconnectivity_oracle;
    let g = wec::graph::gen::bounded_degree_connected(60, 4, 20, 5);
    let pri = Priorities::random(60, 5);
    let verts: Vec<Vertex> = (0..60).collect();
    let mut led = Ledger::new(16);
    let oracle =
        build_biconnectivity_oracle(&mut led, &g, &pri, &verts, 4, 9, BuildOpts::default());
    // Every local graph: members + one outside vertex per incident cluster
    // tree edge; connected; no asymmetric writes to build.
    let w0 = led.costs().asym_writes;
    for ci in 0..oracle.decomposition().num_centers() as u32 {
        let (lg, _bcc) = oracle.local_of(&mut led, ci);
        assert!(lg.n_members >= 1);
        assert!(wec::graph::props::is_connected(
            &wec::graph::Csr::from_edges(lg.csr.n(), lg.csr.edges())
        ));
    }
    assert_eq!(
        led.costs().asym_writes,
        w0,
        "local graphs are query-time, write-free"
    );
}
