//! Differential lockdown of the PR-9 fused layer and the star fast path.
//!
//! Three families of properties, all replayable from the printed case
//! context (seeded `SmallRng`, no proptest dependency):
//!
//! 1. **Labeling equivalence** — on randomized graphs and seeds, the
//!    LDD + star-contraction builder produces a component partition
//!    isomorphic to the paper-faithful §4.2 path's and to union-find
//!    ground truth; the star handle also drops into the sharded serving
//!    stack and answers exactly like its own one-by-one queries.
//! 2. **Fusion output equivalence** — every fused pipeline
//!    (`tabulate/map/filter/flatten/pack_index` compositions, including
//!    empty inputs and all-pass/all-fail filters) is element-identical to
//!    its materialized counterpart, and the fused §4.2 step 3 produces
//!    bit-identical `ConnResult`s to the materialized one.
//! 3. **Cost replays** — pinned exact `Costs` for a fixed fused pipeline
//!    and its materialized counterpart (any drift in the fusion charge
//!    contract fails the literals), fused writes strictly below
//!    materialized writes, and bit-identical costs under
//!    `Ledger::sequential` vs the rayon pool — CI runs this file at
//!    `WEC_THREADS ∈ {1, 2, 8, 16}`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wec::asym::{Costs, Ledger};
use wec::baseline::unionfind::{same_partition, uf_labels};
use wec::connectivity::{connectivity_csr_with, star_connectivity, CrossEdgePass, StarOracle};
use wec::graph::{gen, Csr, Vertex};
use wec::prims::delayed::{tabulate, Delayed};
use wec::prims::filter::{filter_indices, filter_map_collect};
use wec::serve::{Answer, Query, ShardedServer};

const CASES: usize = 32;
const OMEGA: u64 = 16;

/// Same random-graph recipe as `tests/proptests.rs`: degenerate edges
/// (self-loops, duplicates) on purpose.
fn random_graph(rng: &mut SmallRng) -> (Csr, u64) {
    let n = rng.gen_range(2usize..48);
    let max_m = (n * (n - 1) / 2).min(80);
    let m = rng.gen_range(0usize..=max_m);
    let edges: Vec<(Vertex, Vertex)> = (0..m)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    (Csr::from_edges(n, &edges), rng.gen::<u64>())
}

#[test]
fn star_labeling_isomorphic_to_paper_faithful_and_ground_truth() {
    let mut rng = SmallRng::seed_from_u64(0xf0_5109);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let beta_inv = rng.gen_range(1u64..32);
        let beta = 1.0 / beta_inv as f64;
        let mut led_star = Ledger::new(OMEGA);
        let star = star_connectivity(&mut led_star, &g, beta, seed);
        let mut led_paper = Ledger::new(OMEGA);
        let paper = connectivity_csr_with(&mut led_paper, &g, beta, seed, CrossEdgePass::Fused);
        assert!(
            same_partition(star.labels(), &paper.labels),
            "case {case} seed {seed} beta 1/{beta_inv}: star vs §4.2"
        );
        assert!(
            same_partition(star.labels(), &uf_labels(&g)),
            "case {case} seed {seed} beta 1/{beta_inv}: star vs ground truth"
        );
        assert_eq!(
            star.num_components(),
            paper.num_components,
            "case {case} seed {seed}: component counts"
        );
    }
}

#[test]
fn fused_step3_is_bit_identical_to_materialized_step3() {
    let mut rng = SmallRng::seed_from_u64(0xf0_5110);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let beta = 1.0 / rng.gen_range(1u64..32) as f64;
        let mut led_f = Ledger::new(OMEGA);
        let fused = connectivity_csr_with(&mut led_f, &g, beta, seed, CrossEdgePass::Fused);
        let mut led_m = Ledger::new(OMEGA);
        let mat = connectivity_csr_with(&mut led_m, &g, beta, seed, CrossEdgePass::Materialized);
        // Same decomposition, same cross edges, same union order: the
        // entire result must match element for element, not just up to
        // isomorphism.
        assert_eq!(fused.labels, mat.labels, "case {case} seed {seed}");
        assert_eq!(
            fused.forest_edges, mat.forest_edges,
            "case {case} seed {seed}"
        );
        assert_eq!(
            fused.num_components, mat.num_components,
            "case {case} seed {seed}"
        );
        assert_eq!(fused.num_parts, mat.num_parts, "case {case} seed {seed}");
        assert!(
            led_f.costs().asym_writes <= led_m.costs().asym_writes,
            "case {case} seed {seed}: fused writes {} > materialized {}",
            led_f.costs().asym_writes,
            led_m.costs().asym_writes
        );
    }
}

/// A labeled predicate shape for the pipeline-equivalence sweep.
type Shape = (&'static str, fn(usize) -> bool);

#[test]
fn fused_pipelines_match_materialized_counterparts() {
    // Representative compositions over a charged source, including the
    // degenerate shapes: empty input, all-pass filter, all-fail filter.
    let shapes: [Shape; 3] = [
        ("mod7", |i| i % 7 == 0),
        ("all-pass", |_| true),
        ("all-fail", |_| false),
    ];
    for n in [0usize, 1, 1023, 1024, 1025, 9000] {
        for (label, keep) in shapes {
            // filter → map, fused vs materialized filter_map_collect.
            let fused = {
                let mut led = Ledger::new(OMEGA);
                tabulate(n, |i, l| {
                    l.read(1);
                    i
                })
                .filter(move |&i, _| keep(i))
                .map(|i, _| (i as u32) ^ 0x55aa)
                .collect(&mut led)
            };
            let materialized = {
                let mut led = Ledger::new(OMEGA);
                filter_map_collect(&mut led, n, &|i, l| {
                    l.read(1);
                    keep(i).then_some((i as u32) ^ 0x55aa)
                })
            };
            assert_eq!(fused, materialized, "n={n} {label}: filter+map");

            // pack_index vs filter_indices.
            let packed = {
                let mut led = Ledger::new(OMEGA);
                tabulate(n, move |i, _| keep(i)).pack_index(&mut led)
            };
            let indices = {
                let mut led = Ledger::new(OMEGA);
                filter_indices(&mut led, n, &|i, _| keep(i))
            };
            assert_eq!(packed, indices, "n={n} {label}: pack_index");

            // Option-flatten (the §4.2 step-3 shape) vs filter_map.
            let flattened = {
                let mut led = Ledger::new(OMEGA);
                tabulate(n, move |i, _| keep(i).then_some(i as u32))
                    .flatten()
                    .collect(&mut led)
            };
            let filter_mapped = {
                let mut led = Ledger::new(OMEGA);
                filter_map_collect(&mut led, n, &|i, _| keep(i).then_some(i as u32))
            };
            assert_eq!(flattened, filter_mapped, "n={n} {label}: flatten");
        }
    }
}

/// Pinned exact cost replay for one representative pipeline at n = 2500,
/// ω = 16: `tabulate(read 1/slot) → filter(i % 3 == 0) → collect` against
/// the materialized `filter_indices` on the same predicate. The literals
/// encode the fusion charge contract — if any stage's pricing drifts,
/// this fails before anything subtler does.
#[test]
fn pinned_cost_replay_fused_below_materialized() {
    let n = 2500usize;
    let survivors = 834u64; // ⌈2500 / 3⌉
    let chunks = 3u64; // ⌈2500 / 1024⌉

    let mut fused_led = Ledger::new(OMEGA);
    let fused = tabulate(n, |i, l| {
        l.read(1);
        i as u32
    })
    .filter(|&i, _| i % 3 == 0)
    .collect(&mut fused_led);
    assert_eq!(fused.len() as u64, survivors);

    // Fused contract: 1 read/slot (user); ops = slot op + filter-stage op
    // per slot, + 1 concat op per chunk + (chunks − 1) split ops; writes =
    // emitted elements only.
    let expect_fused = Costs {
        asym_reads: n as u64,
        asym_writes: survivors,
        sym_ops: 2 * n as u64 + chunks + (chunks - 1),
    };
    assert_eq!(fused_led.costs(), expect_fused, "fused pipeline drifted");

    let mut mat_led = Ledger::new(OMEGA);
    let materialized = filter_indices(&mut mat_led, n, &|i, l| {
        l.read(1);
        i % 3 == 0
    });
    assert_eq!(materialized.len() as u64, survivors);

    // Materialized two-pass filter: the predicate (and its read) runs
    // twice; block offsets pay chunks + 1 writes and a scan pass; both
    // passes pay (chunks − 1) split ops.
    let expect_mat = Costs {
        asym_reads: 2 * n as u64,
        asym_writes: survivors + chunks + 1,
        sym_ops: chunks + 2 * (chunks - 1),
    };
    assert_eq!(mat_led.costs(), expect_mat, "materialized filter drifted");

    assert!(
        fused_led.costs().asym_writes < mat_led.costs().asym_writes,
        "fused writes must sit strictly below materialized"
    );
    assert!(
        fused_led.costs().asym_reads < mat_led.costs().asym_reads,
        "fused runs the charged predicate once, not twice"
    );
}

#[test]
fn star_handle_drops_into_sharded_serving() {
    let g = gen::disjoint_union(&[
        &gen::bounded_degree_connected(300, 4, 80, 11),
        &gen::grid(6, 7),
        &Csr::from_edges(5, &[]),
    ]);
    let n = g.n() as u32;
    let mut led = Ledger::new(OMEGA);
    let star: StarOracle = star_connectivity(&mut led, &g, 1.0 / OMEGA as f64, 11);

    let mut rng = SmallRng::seed_from_u64(0x57a2);
    let batch: Vec<Query> = (0..200)
        .map(|_| {
            let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if rng.gen_bool(0.5) {
                Query::Connected(u, v)
            } else {
                Query::Component(u)
            }
        })
        .collect();

    for shards in [1usize, 2, 7] {
        let run = |mut led: Ledger| {
            let server = ShardedServer::new(star.query_handle(), shards);
            let answers = server.serve(&mut led, &batch);
            (answers, led.costs(), led.depth())
        };
        let par = run(Ledger::new(OMEGA));
        let seq = run(Ledger::sequential(OMEGA));
        assert_eq!(par, seq, "star serving not bit-identical (shards={shards})");

        // Answers must equal the star handle's own one-by-one queries and
        // agree with ground-truth connectivity.
        let truth = uf_labels(&g);
        for (q, a) in batch.iter().zip(&par.0) {
            match (*q, *a) {
                (Query::Connected(u, v), Answer::Connected(c)) => {
                    assert_eq!(
                        c,
                        truth[u as usize] == truth[v as usize],
                        "connected({u},{v}) shards={shards}"
                    );
                }
                (Query::Component(u), Answer::Component(id)) => {
                    let mut one = Ledger::new(OMEGA);
                    assert_eq!(id, star.component(&mut one, u), "component({u})");
                }
                _ => panic!("answer kind mismatch for {q:?}"),
            }
        }
    }
}

#[test]
fn star_build_costs_invariant_under_parallelism() {
    let n = 2000;
    let g = gen::bounded_degree_connected(n, 4, n / 4, 7);
    let run = |mut led: Ledger| {
        let star = star_connectivity(&mut led, &g, 1.0 / 64.0, 7);
        (
            star.labels().to_vec(),
            star.rounds(),
            led.costs(),
            led.depth(),
            led.sym_peak(),
        )
    };
    assert_eq!(
        run(Ledger::new(64)),
        run(Ledger::sequential(64)),
        "star build not bit-identical across parallelism"
    );
}
