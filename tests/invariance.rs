//! Accounting invariance: the split/merge ledger contract promises
//! **bit-identical** `Costs`, depth, and symmetric-memory peak whether a
//! pipeline executes on one thread ([`Ledger::sequential`]) or on the rayon
//! pool ([`Ledger::new`]) — and, of course, the same answers.
//!
//! These tests run the real pipelines end to end (decomposition build,
//! §4.2 connectivity, both oracles) under both ledgers and compare
//! everything. A regression here means some pass made its charges depend
//! on execution order — the exact bug class the split/merge architecture
//! exists to rule out.

use wec::asym::{Costs, Grain, Ledger, LedgerScope};
use wec::biconnectivity::oracle::build_biconnectivity_oracle;
use wec::connectivity::{connectivity_csr, ConnectivityOracle, OracleBuildOpts};
use wec::core::{BuildOpts, ImplicitDecomposition};
use wec::graph::{gen, Priorities, Vertex};

const OMEGA: u64 = 64;

fn snapshot(led: &Ledger) -> (Costs, u64, u64) {
    (led.costs(), led.depth(), led.sym_peak())
}

#[test]
fn decomposition_build_costs_invariant_under_parallelism() {
    let n = 3000;
    let g = gen::bounded_degree_connected(n, 4, n / 4, 7);
    let pri = Priorities::random(n, 7);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    for parallel_variant in [false, true] {
        let run = |mut led: Ledger| {
            let d = ImplicitDecomposition::build(
                &mut led,
                &g,
                &pri,
                &verts,
                8,
                3,
                BuildOpts {
                    parallel: parallel_variant,
                    ..Default::default()
                },
            );
            let mut centers = d.centers().to_vec();
            centers.sort_unstable();
            (centers, snapshot(&led))
        };
        let (centers_par, acc_par) = run(Ledger::new(OMEGA));
        let (centers_seq, acc_seq) = run(Ledger::sequential(OMEGA));
        assert_eq!(
            centers_par, centers_seq,
            "center set differs (variant={parallel_variant})"
        );
        assert_eq!(
            acc_par, acc_seq,
            "accounting differs (variant={parallel_variant})"
        );
    }
}

#[test]
fn section42_connectivity_costs_invariant_under_parallelism() {
    let g = gen::gnm(2500, 20_000, 5);
    let run = |mut led: Ledger| {
        let r = connectivity_csr(&mut led, &g, 1.0 / OMEGA as f64, 9);
        (r.labels, r.num_components, r.forest_edges, snapshot(&led))
    };
    let a = run(Ledger::new(OMEGA));
    let b = run(Ledger::sequential(OMEGA));
    assert_eq!(a.0, b.0, "component labels differ");
    assert_eq!(a.1, b.1, "component count differs");
    assert_eq!(a.2, b.2, "spanning forest differs");
    assert_eq!(a.3, b.3, "accounting differs");
}

#[test]
fn connectivity_oracle_build_and_query_costs_invariant() {
    let n = 2000;
    let g = gen::disjoint_union(&[
        &gen::bounded_degree_connected(n, 4, n / 4, 2),
        &gen::grid(9, 9),
    ]);
    let n = g.n();
    let pri = Priorities::random(n, 2);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    for parallel_clusters_pass in [false, true] {
        let run = |mut led: Ledger| {
            let k = led.sqrt_omega();
            let oracle = ConnectivityOracle::build(
                &mut led,
                &g,
                &pri,
                &verts,
                k,
                4,
                OracleBuildOpts {
                    parallel_clusters_pass,
                    ..Default::default()
                },
            );
            let build_acc = snapshot(&led);
            let answers: Vec<_> = (0..n as u32)
                .step_by(17)
                .map(|v| oracle.component(&mut led, v))
                .collect();
            (build_acc, snapshot(&led), answers)
        };
        let a = run(Ledger::new(OMEGA));
        let b = run(Ledger::sequential(OMEGA));
        assert_eq!(
            a.0, b.0,
            "build accounting differs (pass={parallel_clusters_pass})"
        );
        assert_eq!(
            a.1, b.1,
            "query accounting differs (pass={parallel_clusters_pass})"
        );
        assert_eq!(
            a.2, b.2,
            "query answers differ (pass={parallel_clusters_pass})"
        );
    }
}

#[test]
fn grain_policy_invariant_under_parallelism_and_thread_count() {
    // The execution-grain policy batches accounting chunks per forked task
    // using the *runtime thread count* — so this test, run across the CI
    // WEC_THREADS matrix (1/2/8/16), proves the adaptive batching cannot
    // leak into the accounted costs: every policy × parallelism combination
    // must agree bit-for-bit, and the absolute numbers are pinned so
    // different matrix legs cannot silently diverge from each other.
    let body = |r: std::ops::Range<usize>, s: &mut LedgerScope| {
        s.read(r.len() as u64);
        if r.start.is_multiple_of(7 * 64) {
            s.write(1);
        }
        r.len() as u64
    };
    let mut reference: Option<(Vec<u64>, Costs, u64, u64)> = None;
    for exec in [
        Grain::Fixed(64),
        Grain::Fixed(4096),
        Grain::AUTO,
        Grain::Auto {
            chunks_per_worker: 1,
        },
    ] {
        for parallel in [false, true] {
            let mut led = if parallel {
                Ledger::new(OMEGA)
            } else {
                Ledger::sequential(OMEGA)
            };
            let out = led.scoped_par_grained(50_000, 64, exec, &body);
            let got = (out, led.costs(), led.depth(), led.sym_peak());
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "accounting drifted under {exec:?} (parallel={parallel})"
                ),
            }
        }
    }
    let (_, costs, depth, _) = reference.unwrap();
    // 50_000 / 64 ⇒ 782 chunks: 50_000 reads, 112 writes (every 7th chunk),
    // 781 split-tree ops; depth = ⌈log₂ 782⌉ + max chunk depth (64 reads +
    // ω for chunks that write).
    assert_eq!(
        costs,
        Costs {
            asym_reads: 50_000,
            asym_writes: 112,
            sym_ops: 781
        }
    );
    assert_eq!(depth, 10 + 64 + OMEGA);
}

#[test]
fn biconnectivity_oracle_build_costs_invariant() {
    let n = 1200;
    let g = gen::bounded_degree_connected(n, 4, n / 3, 6);
    let pri = Priorities::random(n, 6);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let run = |mut led: Ledger| {
        let oracle =
            build_biconnectivity_oracle(&mut led, &g, &pri, &verts, 6, 8, BuildOpts::default());
        let build_acc = snapshot(&led);
        let artic: Vec<bool> = (0..n as u32)
            .step_by(11)
            .map(|v| oracle.is_articulation(&mut led, v))
            .collect();
        (build_acc, snapshot(&led), artic)
    };
    let a = run(Ledger::new(OMEGA));
    let b = run(Ledger::sequential(OMEGA));
    assert_eq!(a.0, b.0, "build accounting differs");
    assert_eq!(a.1, b.1, "query accounting differs");
    assert_eq!(a.2, b.2, "articulation answers differ");
}
