//! End-to-end cross-crate pipelines on medium graphs: every public oracle
//! and algorithm run on the same inputs, answers cross-checked against
//! each other and against ground truth, and the paper's cost orderings
//! asserted (the Table-1 "shape" as a test).

use wec::asym::Ledger;
use wec::baseline::{hopcroft_tarjan, seq_connectivity, shun_connectivity, unionfind};
use wec::biconnectivity::{bc_labeling, oracle::build_biconnectivity_oracle, tecc};
use wec::connectivity::{connectivity_csr, root_forest, ConnectivityOracle, OracleBuildOpts};
use wec::core::BuildOpts;
use wec::graph::{gen, Priorities, Vertex};

#[test]
fn all_connectivity_paths_agree_on_medium_graph() {
    let n = 2500usize;
    let g = gen::disjoint_union(&[
        &gen::bounded_degree_connected(n, 4, n / 3, 11),
        &gen::grid(12, 12),
        &gen::cycle(17),
    ]);
    let n = g.n();
    let truth = unionfind::uf_labels(&g);
    let omega = 64u64;

    let mut led = Ledger::new(omega);
    let (seq_labels, _) = seq_connectivity(&mut led, &g);
    assert!(unionfind::same_partition(&seq_labels, &truth));

    let shun_labels = shun_connectivity(&mut led, &g, 5);
    assert!(unionfind::same_partition(&shun_labels, &truth));

    let r42 = connectivity_csr(&mut led, &g, 1.0 / omega as f64, 5);
    assert!(unionfind::same_partition(&r42.labels, &truth));

    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, 8, 5, OracleBuildOpts::default());
    for step in [37usize, 113] {
        for u in (0..n).step_by(step) {
            for v in (0..n).step_by(step * 2 + 1) {
                assert_eq!(
                    oracle.connected(&mut led, u as u32, v as u32),
                    truth[u] == truth[v],
                    "oracle vs truth at ({u},{v})"
                );
            }
        }
    }
}

#[test]
fn biconnectivity_representations_agree_on_medium_graph() {
    let n = 900usize;
    let g = gen::bounded_degree_connected(n, 4, n / 5, 23);
    let omega = 64u64;
    let mut led = Ledger::new(omega);
    let ht = hopcroft_tarjan(&mut led, &g);
    let bc = bc_labeling(&mut led, &g, 1.0 / omega as f64, 2);
    let pri = Priorities::random(n, 23);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let oracle =
        build_biconnectivity_oracle(&mut led, &g, &pri, &verts, 8, 2, BuildOpts::default());

    // three-way agreement on articulation points & bridges
    for v in 0..n as u32 {
        let expect = ht.articulation[v as usize];
        assert_eq!(
            bc.is_articulation(&mut led, v),
            expect,
            "labeling artic({v})"
        );
        assert_eq!(
            oracle.is_articulation(&mut led, v),
            expect,
            "oracle artic({v})"
        );
    }
    for (eid, &(u, v)) in g.edges().iter().enumerate() {
        let expect = ht.bridge[eid];
        assert_eq!(
            bc.is_bridge(&mut led, eid as u32, &g),
            expect,
            "labeling bridge({u},{v})"
        );
        assert_eq!(
            oracle.is_bridge(&mut led, u, v),
            expect,
            "oracle bridge({u},{v})"
        );
    }
    // edge-BCC partitions all equivalent
    let ours_bc: Vec<u32> = (0..g.m() as u32)
        .map(|e| bc.edge_bcc(&mut led, e, &g))
        .collect();
    assert!(unionfind::same_partition(&ours_bc, &ht.edge_bcc));
    use std::collections::HashMap;
    let mut map: HashMap<wec::biconnectivity::oracle::BccId, u32> = HashMap::new();
    for (eid, &(u, v)) in g.edges().iter().enumerate() {
        let id = oracle.edge_bcc(&mut led, u, v);
        let prev = map.insert(id, ht.edge_bcc[eid]);
        if let Some(p) = prev {
            assert_eq!(
                p, ht.edge_bcc[eid],
                "oracle BCC id split/merge at edge ({u},{v})"
            );
        }
    }
    assert_eq!(
        map.len(),
        ht.num_bcc,
        "oracle must name exactly the ground-truth number of BCCs"
    );

    // pairwise queries: labeling vs oracle on a sample
    for u in (0..n as u32).step_by(29) {
        for v in (0..n as u32).step_by(41) {
            assert_eq!(
                bc.same_bcc(&mut led, u, v),
                oracle.biconnected(&mut led, u, v),
                "same_bcc({u},{v}): labeling vs oracle"
            );
        }
    }

    // 2-edge-connectivity: dense labels vs oracle
    let t = tecc::two_edge_connectivity(&mut led, &g, &bc, 0.25, 3);
    for u in (0..n as u32).step_by(31) {
        for v in (0..n as u32).step_by(53) {
            assert_eq!(
                t.two_edge_connected(&mut led, u, v),
                oracle.two_edge_connected(&mut led, u, v),
                "2ec({u},{v}): labels vs oracle"
            );
        }
    }
}

#[test]
fn table1_write_ordering_holds_as_a_test() {
    // The Table-1 "shape" assertion: on a dense graph, §4.2 writes far less
    // than both prior parallel baselines, and the §4.3 oracle writes less
    // than any per-vertex labeling once k is past its constant.
    let n = 2000usize;
    let g = gen::gnm(n, 30 * n, 1);
    let omega = 1024u64;
    let mut led_shun = Ledger::new(omega);
    let _ = shun_connectivity(&mut led_shun, &g, 1);
    let mut led_42 = Ledger::new(omega);
    let _ = connectivity_csr(&mut led_42, &g, 1.0 / omega as f64, 1);
    assert!(
        led_42.costs().asym_writes * 4 < led_shun.costs().asym_writes,
        "§4.2 must write ≥4x less than the contracting baseline: {} vs {}",
        led_42.costs().asym_writes,
        led_shun.costs().asym_writes
    );
    let sparse = gen::bounded_degree_connected(n, 4, n / 4, 2);
    let pri = Priorities::random(n, 2);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let mut led_oracle = Ledger::new(omega);
    let _ = ConnectivityOracle::build(
        &mut led_oracle,
        &sparse,
        &pri,
        &verts,
        32,
        1,
        OracleBuildOpts::default(),
    );
    assert!(
        led_oracle.costs().asym_writes < n as u64,
        "§4.3 at k=32 must be sublinear: {} vs n = {n}",
        led_oracle.costs().asym_writes
    );
}

#[test]
fn forest_rooting_composes_with_labeling() {
    // §4.2 forest → root_forest → BC labeling with that exact forest: the
    // labeling must accept any valid spanning forest.
    let g = gen::add_random_edges(&gen::grid(15, 15), 60, 9);
    let mut led = Ledger::new(16);
    let conn = connectivity_csr(&mut led, &g, 0.125, 4);
    let parent = root_forest(&mut led, g.n(), &conn.forest_edges, &[0]);
    let bc = wec::biconnectivity::bc_labeling_with_forest(&mut led, &g, parent, 0.125, 4);
    let ht = hopcroft_tarjan(&mut led, &g);
    for v in 0..g.n() as u32 {
        assert_eq!(bc.is_articulation(&mut led, v), ht.articulation[v as usize]);
    }
    assert_eq!(bc.num_bcc, ht.num_bcc);
}
