//! Property-based tests over random graph structures: the decomposition
//! invariants and both oracles against brute force, under arbitrary seeds,
//! sizes, densities, and k.
//!
//! The offline build has no proptest, so cases are driven by a seeded
//! [`rand::rngs::SmallRng`] loop: every case prints enough context in its
//! assertion message to replay (`case` index + derived seed), which is the
//! shrinking-free equivalent of what the original proptest harness gave us.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wec::asym::Ledger;
use wec::baseline::{brute, unionfind};
use wec::biconnectivity::{bc_labeling, oracle::build_biconnectivity_oracle};
use wec::connectivity::{connectivity_csr, ConnectivityOracle, OracleBuildOpts};
use wec::core::{BuildOpts, ImplicitDecomposition};
use wec::graph::{Csr, Priorities, Vertex};

const CASES: usize = 48;

/// A random graph with n in [2, 28] and a random (possibly degenerate)
/// edge list — self-loops and duplicates are exercised on purpose; the
/// builder canonicalizes them.
fn random_graph(rng: &mut SmallRng) -> (Csr, u64) {
    let n = rng.gen_range(2usize..28);
    let max_m = (n * (n - 1) / 2).min(40);
    let m = rng.gen_range(0usize..=max_m);
    let edges: Vec<(Vertex, Vertex)> = (0..m)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    (Csr::from_edges(n, &edges), rng.gen::<u64>())
}

#[test]
fn decomposition_is_a_valid_partition() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0001);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let k = rng.gen_range(1usize..8);
        let n = g.n();
        let pri = Priorities::random(n, seed);
        let verts: Vec<Vertex> = (0..n as u32).collect();
        let mut led = Ledger::new(16);
        let d =
            ImplicitDecomposition::build(&mut led, &g, &pri, &verts, k, seed, BuildOpts::default());
        let mut count = 0usize;
        let mut by_center: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for v in 0..n as u32 {
            let a = d.rho(&mut led, v);
            by_center.entry(a.center.vertex()).or_default().push(v);
            count += 1;
        }
        assert_eq!(count, n, "case {case} seed {seed}");
        for (c, members) in by_center {
            assert!(
                members.len() <= k,
                "case {case} seed {seed} k {k}: cluster {c} size {}",
                members.len()
            );
            assert!(
                wec::graph::props::induced_connected(&g, &members),
                "case {case} seed {seed}: cluster {c} disconnected"
            );
        }
    }
}

#[test]
fn section42_connectivity_matches_union_find() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0002);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let beta_inv = rng.gen_range(1u64..32);
        let mut led = Ledger::new(16);
        let r = connectivity_csr(&mut led, &g, 1.0 / beta_inv as f64, seed);
        assert!(
            unionfind::same_partition(&r.labels, &unionfind::uf_labels(&g)),
            "case {case} seed {seed} beta 1/{beta_inv}"
        );
    }
}

#[test]
fn connectivity_oracle_matches_brute() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0003);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let k = rng.gen_range(2usize..6);
        let n = g.n();
        let pri = Priorities::random(n, seed ^ 1);
        let verts: Vec<Vertex> = (0..n as u32).collect();
        let mut led = Ledger::new((k * k) as u64);
        let oracle = ConnectivityOracle::build(
            &mut led,
            &g,
            &pri,
            &verts,
            k,
            seed,
            OracleBuildOpts::default(),
        );
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                assert_eq!(
                    oracle.connected(&mut led, u, v),
                    brute::connected(&g, u, v),
                    "case {case} seed {seed} k {k}: connected({u},{v})"
                );
            }
        }
    }
}

#[test]
fn bc_labeling_matches_brute() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0004);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let mut led = Ledger::new(16);
        let bc = bc_labeling(&mut led, &g, 0.25, seed);
        let artic = brute::articulation_points(&g);
        let bridges = brute::bridges(&g);
        for v in 0..g.n() as u32 {
            assert_eq!(
                bc.is_articulation(&mut led, v),
                artic[v as usize],
                "case {case} seed {seed}: artic {v}"
            );
        }
        for e in 0..g.m() as u32 {
            assert_eq!(
                bc.is_bridge(&mut led, e, &g),
                bridges[e as usize],
                "case {case} seed {seed}: bridge {e}"
            );
        }
    }
}

#[test]
fn biconnectivity_oracle_matches_brute() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0005);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let k = rng.gen_range(2usize..6);
        let n = g.n();
        let pri = Priorities::random(n, seed ^ 2);
        let verts: Vec<Vertex> = (0..n as u32).collect();
        let mut led = Ledger::new((k * k) as u64);
        let oracle =
            build_biconnectivity_oracle(&mut led, &g, &pri, &verts, k, seed, BuildOpts::default());
        for v in 0..n as u32 {
            assert_eq!(
                oracle.is_articulation(&mut led, v),
                brute::articulation_points(&g)[v as usize],
                "case {case} seed {seed} k {k}: articulation({v})"
            );
        }
        for u in (0..n as u32).step_by(2) {
            for v in (1..n as u32).step_by(3) {
                assert_eq!(
                    oracle.biconnected(&mut led, u, v),
                    brute::same_bcc(&g, u, v),
                    "case {case} seed {seed} k {k}: biconnected({u},{v})"
                );
                assert_eq!(
                    oracle.two_edge_connected(&mut led, u, v),
                    brute::two_edge_connected(&g, u, v),
                    "case {case} seed {seed} k {k}: 2ec({u},{v})"
                );
            }
        }
    }
}
