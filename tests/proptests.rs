//! Property-based tests over random graph structures: the decomposition
//! invariants and both oracles against brute force, under arbitrary seeds,
//! sizes, densities, and k.
//!
//! The offline build has no proptest, so cases are driven by a seeded
//! [`rand::rngs::SmallRng`] loop: every case prints enough context in its
//! assertion message to replay (`case` index + derived seed), which is the
//! shrinking-free equivalent of what the original proptest harness gave us.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wec::asym::Ledger;
use wec::baseline::{brute, unionfind};
use wec::biconnectivity::{bc_labeling, oracle::build_biconnectivity_oracle};
use wec::connectivity::{connectivity_csr, ConnectivityOracle, OracleBuildOpts};
use wec::core::{BuildOpts, ImplicitDecomposition};
use wec::graph::{Csr, Priorities, Vertex};
use wec::prims::delayed::{tabulate, Delayed};

const CASES: usize = 48;

/// A random graph with n in [2, 28] and a random (possibly degenerate)
/// edge list — self-loops and duplicates are exercised on purpose; the
/// builder canonicalizes them.
fn random_graph(rng: &mut SmallRng) -> (Csr, u64) {
    let n = rng.gen_range(2usize..28);
    let max_m = (n * (n - 1) / 2).min(40);
    let m = rng.gen_range(0usize..=max_m);
    let edges: Vec<(Vertex, Vertex)> = (0..m)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    (Csr::from_edges(n, &edges), rng.gen::<u64>())
}

#[test]
fn decomposition_is_a_valid_partition() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0001);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let k = rng.gen_range(1usize..8);
        let n = g.n();
        let pri = Priorities::random(n, seed);
        let verts: Vec<Vertex> = (0..n as u32).collect();
        let mut led = Ledger::new(16);
        let d =
            ImplicitDecomposition::build(&mut led, &g, &pri, &verts, k, seed, BuildOpts::default());
        let mut count = 0usize;
        let mut by_center: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for v in 0..n as u32 {
            let a = d.rho(&mut led, v);
            by_center.entry(a.center.vertex()).or_default().push(v);
            count += 1;
        }
        assert_eq!(count, n, "case {case} seed {seed}");
        for (c, members) in by_center {
            assert!(
                members.len() <= k,
                "case {case} seed {seed} k {k}: cluster {c} size {}",
                members.len()
            );
            assert!(
                wec::graph::props::induced_connected(&g, &members),
                "case {case} seed {seed}: cluster {c} disconnected"
            );
        }
    }
}

#[test]
fn section42_connectivity_matches_union_find() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0002);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let beta_inv = rng.gen_range(1u64..32);
        let mut led = Ledger::new(16);
        let r = connectivity_csr(&mut led, &g, 1.0 / beta_inv as f64, seed);
        assert!(
            unionfind::same_partition(&r.labels, &unionfind::uf_labels(&g)),
            "case {case} seed {seed} beta 1/{beta_inv}"
        );
    }
}

#[test]
fn connectivity_oracle_matches_brute() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0003);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let k = rng.gen_range(2usize..6);
        let n = g.n();
        let pri = Priorities::random(n, seed ^ 1);
        let verts: Vec<Vertex> = (0..n as u32).collect();
        let mut led = Ledger::new((k * k) as u64);
        let oracle = ConnectivityOracle::build(
            &mut led,
            &g,
            &pri,
            &verts,
            k,
            seed,
            OracleBuildOpts::default(),
        );
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                assert_eq!(
                    oracle.connected(&mut led, u, v),
                    brute::connected(&g, u, v),
                    "case {case} seed {seed} k {k}: connected({u},{v})"
                );
            }
        }
    }
}

#[test]
fn bc_labeling_matches_brute() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0004);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let mut led = Ledger::new(16);
        let bc = bc_labeling(&mut led, &g, 0.25, seed);
        let artic = brute::articulation_points(&g);
        let bridges = brute::bridges(&g);
        for v in 0..g.n() as u32 {
            assert_eq!(
                bc.is_articulation(&mut led, v),
                artic[v as usize],
                "case {case} seed {seed}: artic {v}"
            );
        }
        for e in 0..g.m() as u32 {
            assert_eq!(
                bc.is_bridge(&mut led, e, &g),
                bridges[e as usize],
                "case {case} seed {seed}: bridge {e}"
            );
        }
    }
}

/// One randomly drawn lazy stage of a fused composition chain. Every
/// variant is expressed as a `flat_map` so each chain level instantiates
/// exactly one adapter type regardless of which stage was drawn — the
/// depth ≤ 4 bound below then caps monomorphization at five pipeline
/// shapes total.
#[derive(Clone, Copy, Debug)]
enum Stage {
    /// `x ↦ x ⊕ c` (one output per input).
    Map(u64),
    /// keep `x` iff `x % k == 0` (zero or one output per input).
    Filter(u64),
    /// `x ↦ x, x+1, …` with `x % c` outputs (fan-out).
    Flat(u64),
}

impl Stage {
    fn random(rng: &mut SmallRng) -> Stage {
        match rng.gen_range(0u32..3) {
            0 => Stage::Map(rng.gen::<u64>() | 1),
            1 => Stage::Filter(rng.gen_range(2u64..7)),
            _ => Stage::Flat(rng.gen_range(2u64..4)),
        }
    }

    /// The stage's semantics as a plain (uncharged) expansion — the
    /// reference interpreter.
    fn expand(self, x: u64) -> Vec<u64> {
        match self {
            Stage::Map(c) => vec![x ^ c],
            Stage::Filter(k) => {
                if x.is_multiple_of(k) {
                    vec![x]
                } else {
                    Vec::new()
                }
            }
            Stage::Flat(c) => (0..x % c).map(|j| x + j).collect(),
        }
    }
}

/// The stage as a charged fused closure. Each call site of this function
/// produces the *same* opaque closure type, which is what keeps the
/// per-depth pipeline types finite.
fn stage_fn(st: Stage) -> impl Fn(u64, &mut Ledger) -> Vec<u64> + Sync {
    move |x, _| st.expand(x)
}

/// Evaluate a composition chain lazily (fused) at the given depth. The
/// explicit per-depth arms are deliberate: a recursive generic over the
/// growing adapter types would never finish monomorphizing.
fn run_fused(led: &mut Ledger, n: usize, stages: &[Stage]) -> Vec<u64> {
    let base = tabulate(n, |i, l| {
        l.read(1);
        i as u64
    });
    match *stages {
        [] => base.collect(led),
        [a] => base.flat_map(stage_fn(a)).collect(led),
        [a, b] => base
            .flat_map(stage_fn(a))
            .flat_map(stage_fn(b))
            .collect(led),
        [a, b, c] => base
            .flat_map(stage_fn(a))
            .flat_map(stage_fn(b))
            .flat_map(stage_fn(c))
            .collect(led),
        [a, b, c, d] => base
            .flat_map(stage_fn(a))
            .flat_map(stage_fn(b))
            .flat_map(stage_fn(c))
            .flat_map(stage_fn(d))
            .collect(led),
        _ => unreachable!("composition depth is capped at 4"),
    }
}

/// The eager, uncharged reference: materialize every stage boundary with
/// plain iterators.
fn run_reference(n: usize, stages: &[Stage]) -> Vec<u64> {
    let mut cur: Vec<u64> = (0..n as u64).collect();
    for &st in stages {
        cur = cur.into_iter().flat_map(|x| st.expand(x)).collect();
    }
    cur
}

#[test]
fn fused_composition_trees_match_reference_with_invariant_costs() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0006);
    for case in 0..CASES {
        let n = rng.gen_range(0usize..600);
        let depth = rng.gen_range(0usize..=4);
        let stages: Vec<Stage> = (0..depth).map(|_| Stage::random(&mut rng)).collect();

        let expected = run_reference(n, &stages);
        let run = |mut led: Ledger| {
            let out = run_fused(&mut led, n, &stages);
            (out, led.costs(), led.depth(), led.sym_peak())
        };
        let par = run(Ledger::new(16));
        let seq = run(Ledger::sequential(16));
        assert_eq!(
            par.0, expected,
            "case {case} n {n} stages {stages:?}: fused output != reference"
        );
        // Bit-identical costs on one thread vs the pool; CI re-runs this
        // file at WEC_THREADS ∈ {1, 2, 8, 16}, so the same assertion also
        // pins the costs across process-level thread counts.
        assert_eq!(
            par, seq,
            "case {case} n {n} stages {stages:?}: costs not thread-invariant"
        );
        // Fusion's write contract: writes == emitted elements, no matter
        // how the chain is shaped.
        assert_eq!(
            par.1.asym_writes,
            expected.len() as u64,
            "case {case} n {n} stages {stages:?}: writes must equal output size"
        );
    }
}

#[test]
fn biconnectivity_oracle_matches_brute() {
    let mut rng = SmallRng::seed_from_u64(0xdec0_0005);
    for case in 0..CASES {
        let (g, seed) = random_graph(&mut rng);
        let k = rng.gen_range(2usize..6);
        let n = g.n();
        let pri = Priorities::random(n, seed ^ 2);
        let verts: Vec<Vertex> = (0..n as u32).collect();
        let mut led = Ledger::new((k * k) as u64);
        let oracle =
            build_biconnectivity_oracle(&mut led, &g, &pri, &verts, k, seed, BuildOpts::default());
        for v in 0..n as u32 {
            assert_eq!(
                oracle.is_articulation(&mut led, v),
                brute::articulation_points(&g)[v as usize],
                "case {case} seed {seed} k {k}: articulation({v})"
            );
        }
        for u in (0..n as u32).step_by(2) {
            for v in (1..n as u32).step_by(3) {
                assert_eq!(
                    oracle.biconnected(&mut led, u, v),
                    brute::same_bcc(&g, u, v),
                    "case {case} seed {seed} k {k}: biconnected({u},{v})"
                );
                assert_eq!(
                    oracle.two_edge_connected(&mut led, u, v),
                    brute::two_edge_connected(&g, u, v),
                    "case {case} seed {seed} k {k}: 2ec({u},{v})"
                );
            }
        }
    }
}
