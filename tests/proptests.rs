//! Property-based tests (proptest) over random graph structures: the
//! decomposition invariants and both oracles against brute force, under
//! arbitrary seeds, sizes, densities, and k.

use proptest::prelude::*;
use wec::asym::Ledger;
use wec::baseline::{brute, unionfind};
use wec::biconnectivity::{bc_labeling, oracle::build_biconnectivity_oracle};
use wec::connectivity::{connectivity_csr, ConnectivityOracle, OracleBuildOpts};
use wec::core::{BuildOpts, ImplicitDecomposition};
use wec::graph::{Csr, Priorities, Vertex};

/// Strategy: a random graph with n in [2, 28] and a random edge list
/// (dedup'd by the builder), plus seeds.
fn graph_strategy() -> impl Strategy<Value = (Csr, u64)> {
    (2usize..28, any::<u64>()).prop_flat_map(|(n, seed)| {
        let max_m = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m.min(40))
            .prop_map(move |edges| (Csr::from_edges(n, &edges), seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decomposition_is_a_valid_partition((g, seed) in graph_strategy(), k in 1usize..8) {
        let n = g.n();
        let pri = Priorities::random(n, seed);
        let verts: Vec<Vertex> = (0..n as u32).collect();
        let mut led = Ledger::new(16);
        let d = ImplicitDecomposition::build(
            &mut led, &g, &pri, &verts, k, seed, BuildOpts::default());
        let mut count = 0usize;
        let mut by_center: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for v in 0..n as u32 {
            let a = d.rho(&mut led, v);
            by_center.entry(a.center.vertex()).or_default().push(v);
            count += 1;
        }
        prop_assert_eq!(count, n);
        for (c, members) in by_center {
            prop_assert!(members.len() <= k, "cluster {} size {}", c, members.len());
            prop_assert!(wec::graph::props::induced_connected(&g, &members));
        }
    }

    #[test]
    fn section42_connectivity_matches_union_find((g, seed) in graph_strategy(), beta_inv in 1u64..32) {
        let mut led = Ledger::new(16);
        let r = connectivity_csr(&mut led, &g, 1.0 / beta_inv as f64, seed);
        prop_assert!(unionfind::same_partition(&r.labels, &unionfind::uf_labels(&g)));
    }

    #[test]
    fn connectivity_oracle_matches_brute((g, seed) in graph_strategy(), k in 2usize..6) {
        let n = g.n();
        let pri = Priorities::random(n, seed ^ 1);
        let verts: Vec<Vertex> = (0..n as u32).collect();
        let mut led = Ledger::new((k * k) as u64);
        let oracle = ConnectivityOracle::build(
            &mut led, &g, &pri, &verts, k, seed, OracleBuildOpts::default());
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(oracle.connected(&mut led, u, v), brute::connected(&g, u, v),
                    "connected({},{})", u, v);
            }
        }
    }

    #[test]
    fn bc_labeling_matches_brute((g, seed) in graph_strategy()) {
        let mut led = Ledger::new(16);
        let bc = bc_labeling(&mut led, &g, 0.25, seed);
        let artic = brute::articulation_points(&g);
        let bridges = brute::bridges(&g);
        for v in 0..g.n() as u32 {
            prop_assert_eq!(bc.is_articulation(&mut led, v), artic[v as usize], "artic {}", v);
        }
        for e in 0..g.m() as u32 {
            prop_assert_eq!(bc.is_bridge(&mut led, e, &g), bridges[e as usize], "bridge {}", e);
        }
    }

    #[test]
    fn biconnectivity_oracle_matches_brute((g, seed) in graph_strategy(), k in 2usize..6) {
        let n = g.n();
        let pri = Priorities::random(n, seed ^ 2);
        let verts: Vec<Vertex> = (0..n as u32).collect();
        let mut led = Ledger::new((k * k) as u64);
        let oracle = build_biconnectivity_oracle(
            &mut led, &g, &pri, &verts, k, seed, BuildOpts::default());
        for v in 0..n as u32 {
            prop_assert_eq!(
                oracle.is_articulation(&mut led, v),
                brute::articulation_points(&g)[v as usize],
                "articulation({})", v);
        }
        for u in (0..n as u32).step_by(2) {
            for v in (1..n as u32).step_by(3) {
                prop_assert_eq!(oracle.biconnected(&mut led, u, v), brute::same_bcc(&g, u, v),
                    "biconnected({},{})", u, v);
                prop_assert_eq!(
                    oracle.two_edge_connected(&mut led, u, v),
                    brute::two_edge_connected(&g, u, v),
                    "2ec({},{})", u, v);
            }
        }
    }
}
