//! Section 6: sublinear-write algorithms on unbounded-degree graphs via
//! the implicit bounded-degree view `G'`.
//!
//! What the transformation provably preserves — and what it does not —
//! is documented in `wec-graph/src/bounded.rs` and DESIGN.md: connectivity
//! and the edge-cut structure (bridges / 2-edge-connectivity) carry over
//! exactly; vertex biconnectivity does not in general (this file contains
//! the counterexample, kept as a *documented-limitation* test).

use wec::asym::Ledger;
use wec::baseline::brute;
use wec::connectivity::{ConnectivityOracle, OracleBuildOpts};
use wec::graph::{gen, BoundedDegreeView, Csr, GraphView, Priorities, Vertex};

fn view_vertices(view: &BoundedDegreeView) -> Vec<Vertex> {
    (0..view.n() as u32)
        .filter(|&v| view.is_vertex(v))
        .collect()
}

#[test]
fn connectivity_oracle_over_the_view_matches_original() {
    for (g, seed) in [
        (gen::star(80), 1u64),
        (gen::chung_lu(150, 400, 2.3, 5), 2),
        (
            gen::disjoint_union(&[&gen::complete(12), &gen::star(30), &gen::path(9)]),
            3,
        ),
    ] {
        let view = BoundedDegreeView::new(&g, 4);
        let verts = view_vertices(&view);
        let pri = Priorities::random(view.n(), seed);
        let mut led = Ledger::new(16);
        let oracle = ConnectivityOracle::build(
            &mut led,
            &view,
            &pri,
            &verts,
            4,
            seed,
            OracleBuildOpts::default(),
        );
        // original-vertex queries agree with ground truth on G
        let (comp, _) = wec::graph::props::components(&g);
        for u in (0..g.n() as u32).step_by(3) {
            for v in (0..g.n() as u32).step_by(7) {
                assert_eq!(
                    oracle.connected(&mut led, u, v),
                    comp[u as usize] == comp[v as usize],
                    "connected({u},{v}) via G' (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn view_queries_stay_write_free_and_bounded() {
    let g = gen::star(500);
    let view = BoundedDegreeView::new(&g, 4);
    let mut led = Ledger::new(16);
    // neighbor enumeration over the view never writes
    let mut out = Vec::new();
    for v in (0..view.n() as u32)
        .filter(|&v| view.is_vertex(v))
        .take(600)
    {
        out.clear();
        view.neighbors_into(&mut led, v, &mut out);
        assert!(out.len() <= 4, "degree cap violated at {v}");
    }
    assert_eq!(led.costs().asym_writes, 0);
}

#[test]
fn bridges_preserved_through_the_view() {
    // Bridge structure carries over exactly: an original edge is a bridge
    // in G iff its image is a bridge in G'. Check via brute force on the
    // materialized view (small inputs).
    for (g, seed) in [
        (gen::star(24), 4u64),
        (gen::caterpillar(4, 5), 5),
        (gen::add_random_edges(&gen::star(20), 8, 9), 6),
    ] {
        let view = BoundedDegreeView::new(&g, 4);
        let mut led = Ledger::new(8);
        // materialize G' for the brute-force comparison
        let mut edges = Vec::new();
        let mut nbrs = Vec::new();
        for v in 0..view.n() as u32 {
            if !view.is_vertex(v) {
                continue;
            }
            nbrs.clear();
            view.neighbors_into(&mut led, v, &mut nbrs);
            for &w in &nbrs {
                if v < w {
                    edges.push((v, w));
                }
            }
        }
        let gp = Csr::from_edges(view.n(), &edges);
        let bridges_g = brute::bridges(&g);
        for (eid, &(u, v)) in g.edges().iter().enumerate() {
            let (a, b) = view.edge_image(&mut led, u, v);
            let img_eid =
                gp.neighbor_edge_ids(a)[gp.arc_position(a, b).expect("image edge exists")] as usize;
            let img_bridge = brute::bridges(&gp)[img_eid];
            assert_eq!(
                bridges_g[eid], img_bridge,
                "bridge({u},{v}) vs image ({a},{b}) seed {seed}"
            );
        }
    }
}

/// Pairwise 2-edge-connectivity survives the view **one way only**: two
/// edge-disjoint paths in `G'` contract to two edge-disjoint paths in `G`,
/// so `2ec(G', u, v) ⇒ 2ec(G, u, v)` for original vertices. The converse is
/// *false* in general — two edge-disjoint `G`-paths through a high-degree
/// vertex can collide on a shared virtual-tree edge in `G'` when their slots
/// sit under the same subtree (same mechanism as the vertex-biconnectivity
/// limitation below). Per-edge *bridge* status is still preserved exactly
/// (previous test).
#[test]
fn two_edge_connectivity_view_implies_original() {
    let mut false_negatives = 0usize;
    let mut pairs = 0usize;
    for seed in 0..4u64 {
        let g = gen::add_random_edges(&gen::star(16), 6, seed);
        let view = BoundedDegreeView::new(&g, 4);
        let mut led = Ledger::new(8);
        let mut edges = Vec::new();
        let mut nbrs = Vec::new();
        for v in 0..view.n() as u32 {
            if view.is_vertex(v) {
                nbrs.clear();
                view.neighbors_into(&mut led, v, &mut nbrs);
                for &w in &nbrs {
                    if v < w {
                        edges.push((v, w));
                    }
                }
            }
        }
        let gp = Csr::from_edges(view.n(), &edges);
        for u in 0..g.n() as u32 {
            for v in (u + 1)..g.n() as u32 {
                pairs += 1;
                let in_g = brute::two_edge_connected(&g, u, v);
                let in_view = brute::two_edge_connected(&gp, u, v);
                assert!(
                    !in_view || in_g,
                    "view must never invent 2ec: ({u},{v}) seed {seed}"
                );
                false_negatives += usize::from(in_g && !in_view);
            }
        }
    }
    // The lossy direction exists — star-plus-chords graphs interleave slots
    // through the high-degree center often — but a gross regression of the
    // transformation (e.g. disconnecting trees) would lose far more.
    assert!(
        false_negatives * 4 <= pairs,
        "view lost 2ec on {false_negatives}/{pairs} pairs — transformation regressed"
    );
}

/// **Documented limitation** (DESIGN.md §1, `bounded.rs` docs): the §6
/// virtual-tree sketch does *not* preserve vertex biconnectivity in
/// general — when two biconnected components meet at a high-degree
/// articulation point whose edge slots interleave across different leaves,
/// the virtual tree offers a bypass. This test pins the concrete
/// counterexample so the behavior is tracked, not hidden.
#[test]
fn vertex_biconnectivity_counterexample_is_real() {
    // v = 4 with sorted neighbors {0,1,2,3} and side edges (0,2), (1,3):
    // the two BCCs {4,0,2} and {4,1,3} interleave across 4's edge slots,
    // so the virtual tree's leaves {0,1} and {2,3} each straddle both.
    let g = Csr::from_edges(5, &[(4, 0), (4, 1), (4, 2), (4, 3), (0, 2), (1, 3)]);
    assert!(
        !brute::same_bcc(&g, 0, 1),
        "ground truth: 0 and 1 are not biconnected in G"
    );
    let view = BoundedDegreeView::new(&g, 3);
    let mut led = Ledger::new(8);
    let mut edges = Vec::new();
    let mut nbrs = Vec::new();
    for v in 0..view.n() as u32 {
        if view.is_vertex(v) {
            nbrs.clear();
            view.neighbors_into(&mut led, v, &mut nbrs);
            for &w in &nbrs {
                if v < w {
                    edges.push((v, w));
                }
            }
        }
    }
    let gp = Csr::from_edges(view.n(), &edges);
    // In G', the two leaves of 4's virtual tree provide a bypass
    // (0 − leaf₁ − 1 and 0 − 2 − leaf₂ − 3 − 1 are vertex-disjoint): 0 and
    // 1 become biconnected. If this assertion ever starts failing, the
    // transformation changed and the docs must be updated.
    assert!(
        brute::same_bcc(&gp, 0, 1),
        "expected the documented counterexample to reproduce"
    );
}
