//! Batch-vs-sequential serving equivalence: the `wec-serve` shard/merge
//! contract promises that
//!
//! 1. batch answers are identical to one-by-one oracle queries,
//! 2. for a fixed shard count, the merged `Costs`/depth/sym-peak are
//!    **bit-identical** whether the shards ran on one thread
//!    ([`Ledger::sequential`]) or many ([`Ledger::new`]), and
//! 3. the shard count changes `Costs` only by the documented scheduler
//!    bookkeeping (`shard_chunks(n, s) − 1` unit operations), so sharded
//!    serving accounts exactly like sequential serving plus a pure function
//!    of `(n, s)`.
//!
//! CI runs this file under `WEC_THREADS ∈ {1, 2, 8}` alongside
//! `tests/invariance.rs`, so the promises hold at every parallelism level.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wec::asym::Ledger;
use wec::biconnectivity::oracle::build_biconnectivity_oracle;
use wec::biconnectivity::BiconnectivityOracle;
use wec::connectivity::{ConnectivityOracle, OracleBuildOpts};
use wec::core::BuildOpts;
use wec::graph::{gen, Csr, Priorities, Vertex};
use wec::serve::{shard_chunks, Answer, Query, ShardedServer, QUERY_WORDS};

const OMEGA: u64 = 64;
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn test_graph() -> Csr {
    gen::disjoint_union(&[
        &gen::bounded_degree_connected(700, 4, 150, 11),
        &gen::grid(8, 9),
        &gen::path(13),
        &Csr::from_edges(4, &[]),
    ])
}

fn build_oracles<'g>(
    g: &'g Csr,
    pri: &'g Priorities,
    verts: &'g [Vertex],
) -> (ConnectivityOracle<'g, Csr>, BiconnectivityOracle<'g, Csr>) {
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let conn = ConnectivityOracle::build(&mut led, g, pri, verts, k, 5, OracleBuildOpts::default());
    let bicon = build_biconnectivity_oracle(&mut led, g, pri, verts, k, 5, BuildOpts::default());
    (conn, bicon)
}

/// A randomized batch mixing all four query kinds over vertices of `n`.
fn random_batch(rng: &mut SmallRng, n: u32, len: usize) -> Vec<Query> {
    (0..len)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            match rng.gen_range(0u32..4) {
                0 => Query::Connected(u, v),
                1 => Query::Component(u),
                2 => Query::TwoEdgeConnected(u, v),
                _ => Query::Biconnected(u, v),
            }
        })
        .collect()
}

#[test]
fn randomized_batches_equal_one_by_one_answers_and_sequential_costs() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let mut rng = SmallRng::seed_from_u64(0xB47C);
    for round in 0..4 {
        let len = rng.gen_range(1usize..160);
        let batch = random_batch(&mut rng, n as u32, len);

        // Ground truth: one query at a time on a plain ledger, summing the
        // per-query charges.
        let server1 =
            ShardedServer::new(conn.query_handle(), 1).with_biconnectivity(bicon.query_handle());
        let mut one_led = Ledger::new(OMEGA);
        let expected: Vec<Answer> = batch
            .iter()
            .map(|&q| server1.answer_one(&mut one_led, q))
            .collect();
        let one_by_one = one_led.costs();

        for shards in SHARD_COUNTS {
            let server = ShardedServer::new(conn.query_handle(), shards)
                .with_biconnectivity(bicon.query_handle());
            let mut led = Ledger::new(OMEGA);
            let answers = server.serve(&mut led, &batch);
            assert_eq!(
                answers, expected,
                "batch answers differ from one-by-one (round={round}, shards={shards})"
            );
            // Exact cost contract: per-query charges + the batch input scan
            // + the documented split bookkeeping. Nothing else.
            let mut expect_costs = one_by_one;
            expect_costs.asym_reads += batch.len() as u64 * QUERY_WORDS;
            expect_costs.sym_ops += shard_chunks(batch.len(), shards) as u64 - 1;
            assert_eq!(
                led.costs(),
                expect_costs,
                "merged batch costs differ from sequential serving \
                 (round={round}, shards={shards})"
            );
            assert_eq!(led.costs().asym_writes, 0, "serving must never write");
        }
    }
}

#[test]
fn batch_serving_costs_invariant_under_parallelism() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let mut rng = SmallRng::seed_from_u64(0x5E2E);
    let batch = random_batch(&mut rng, n as u32, 300);

    for shards in SHARD_COUNTS {
        let run = |mut led: Ledger| {
            let server = ShardedServer::new(conn.query_handle(), shards)
                .with_biconnectivity(bicon.query_handle());
            let answers = server.serve(&mut led, &batch);
            (answers, led.costs(), led.depth(), led.sym_peak())
        };
        let par = run(Ledger::new(OMEGA));
        let seq = run(Ledger::sequential(OMEGA));
        assert_eq!(
            par, seq,
            "batch serving not bit-identical across parallelism (shards={shards})"
        );
    }
}

#[test]
fn component_ids_consistent_between_serving_and_oracle() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, _bicon) = build_oracles(&g, &pri, &verts);

    let batch: Vec<Query> = (0..n as u32).map(Query::Component).collect();
    let server = ShardedServer::new(conn.query_handle(), 7);
    let mut led = Ledger::new(OMEGA);
    let answers = server.serve(&mut led, &batch);
    for v in 0..n as u32 {
        let mut one = Ledger::new(OMEGA);
        assert_eq!(
            answers[v as usize],
            Answer::Component(conn.component(&mut one, v)),
            "component of {v}"
        );
    }
}
