//! The streaming front end's contracts, exactly:
//!
//! 1. answers are delivered strictly in submission order and equal
//!    one-by-one oracle queries (under the default affinity + CLOCK
//!    policy);
//! 2. the documented **legacy** hit/miss cost formula
//!    ([`Routing::Contiguous`] + [`Eviction::FillUntilFull`], the PR-3
//!    configuration) holds **exactly**: a dispatch charges the batch
//!    input scan + cache probes + the full one-by-one cost of every miss
//!    (canonical order) + one write per cache fill + the
//!    `shard_chunks − 1` scheduler bookkeeping, and nothing else —
//!    verified cold (misses) and warmed (all hits) against an independent
//!    replay of the admission/partition logic. The affinity + CLOCK
//!    formula is enforced the same way by `tests/affinity.rs`;
//! 3. every charge is **bit-identical** between parallel and sequential
//!    ledgers; CI additionally runs this file under `WEC_THREADS ∈
//!    {1, 2, 8}`, so the totals are pinned at every parallelism level;
//! 4. admission edge cases behave: `max_batch = 1` dispatches every
//!    submission immediately, and a drain whose queue runs out mid-flush
//!    ships a final short micro-batch.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wec::asym::{Costs, Ledger};
use wec::biconnectivity::oracle::build_biconnectivity_oracle;
use wec::biconnectivity::{BiconnQueryKey, BiconnectivityOracle};
use wec::connectivity::{ConnectivityOracle, OracleBuildOpts};
use wec::core::BuildOpts;
use wec::graph::{gen, Csr, Priorities, Vertex};
use wec::serve::{
    shard_chunks, AdmissionPolicy, Answer, Eviction, FullServer, FullStreamingServer, Query,
    Routing, ShardedServer, StreamingServer, CACHE_INSERT_WRITES, CACHE_PROBE_READS, QUERY_WORDS,
};

const OMEGA: u64 = 64;
const SHARDS: usize = 3;

fn test_graph() -> Csr {
    gen::disjoint_union(&[
        &gen::bounded_degree_connected(700, 4, 150, 11),
        &gen::grid(8, 9),
        &gen::path(13),
        &Csr::from_edges(4, &[]),
    ])
}

fn build_oracles<'g>(
    g: &'g Csr,
    pri: &'g Priorities,
    verts: &'g [Vertex],
) -> (ConnectivityOracle<'g, Csr>, BiconnectivityOracle<'g, Csr>) {
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let conn = ConnectivityOracle::build(&mut led, g, pri, verts, k, 5, OracleBuildOpts::default());
    let bicon = build_biconnectivity_oracle(&mut led, g, pri, verts, k, 5, BuildOpts::default());
    (conn, bicon)
}

/// A randomized stream mixing all four query kinds, with enough repetition
/// (small vertex range) that caches see hits even cold.
fn random_stream(rng: &mut SmallRng, n: u32, len: usize) -> Vec<Query> {
    (0..len)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            match rng.gen_range(0u32..6) {
                0 | 1 => Query::Connected(u, v),
                2 | 3 => Query::Component(u),
                4 => Query::TwoEdgeConnected(u, v),
                _ => Query::Biconnected(u, v),
            }
        })
        .collect()
}

fn streaming_server<'o, 'g>(
    conn: &'o ConnectivityOracle<'g, Csr>,
    bicon: &'o BiconnectivityOracle<'g, Csr>,
    policy: AdmissionPolicy,
) -> FullStreamingServer<'o, 'g, Csr> {
    let sharded =
        ShardedServer::new(conn.query_handle(), SHARDS).with_biconnectivity(bicon.query_handle());
    StreamingServer::new(sharded, policy)
}

/// Independent replay of the documented cost contract: partition the
/// stream into micro-batches exactly as a no-auto-flush drain would
/// (consecutive `max_batch`-sized chunks), map each query to its shard
/// (`position / grain`), track per-shard key sets, and sum the formula —
/// `QUERY_WORDS` per query, `CACHE_PROBE_READS` per probe, each miss's
/// canonical one-by-one cost on a fresh ledger, `CACHE_INSERT_WRITES` per
/// fill while below capacity, and `shard_chunks − 1` ops per dispatch.
/// `warm_sets` carries per-shard key sets in and out, so a second replay
/// over the same sets prices the warmed pass.
#[allow(clippy::type_complexity)]
fn replay_expected_costs(
    server1: &FullServer<'_, '_, Csr>,
    stream: &[Query],
    max_batch: usize,
    capacity: usize,
    sets: &mut [(
        std::collections::HashSet<Vertex>,
        std::collections::HashSet<BiconnQueryKey>,
    )],
) -> Costs {
    let mut expect = Costs::ZERO;
    for batch in stream.chunks(max_batch) {
        let grain = batch.len().div_ceil(SHARDS);
        expect.asym_reads += batch.len() as u64 * QUERY_WORDS;
        expect.sym_ops += shard_chunks(batch.len(), SHARDS) as u64 - 1;
        for (j, &q) in batch.iter().enumerate() {
            let (comp, pred) = &mut sets[j / grain];
            let mut led = Ledger::new(OMEGA);
            match q {
                Query::Component(v) => {
                    expect.asym_reads += CACHE_PROBE_READS;
                    if !comp.contains(&v) {
                        server1.conn_handle().component(&mut led, v);
                        if comp.len() + pred.len() < capacity {
                            expect.asym_writes += CACHE_INSERT_WRITES;
                            comp.insert(v);
                        }
                    }
                }
                Query::Connected(u, v) => {
                    for x in [u, v] {
                        expect.asym_reads += CACHE_PROBE_READS;
                        if !comp.contains(&x) {
                            server1.conn_handle().component(&mut led, x);
                            if comp.len() + pred.len() < capacity {
                                expect.asym_writes += CACHE_INSERT_WRITES;
                                comp.insert(x);
                            }
                        }
                    }
                }
                Query::TwoEdgeConnected(u, v) | Query::Biconnected(u, v) => {
                    let key = if matches!(q, Query::TwoEdgeConnected(..)) {
                        BiconnQueryKey::two_edge_connected(u, v)
                    } else {
                        BiconnQueryKey::biconnected(u, v)
                    };
                    expect.asym_reads += CACHE_PROBE_READS;
                    if !pred.contains(&key) {
                        server1.bicon_handle().unwrap().answer_key(&mut led, key);
                        if comp.len() + pred.len() < capacity {
                            expect.asym_writes += CACHE_INSERT_WRITES;
                            pred.insert(key);
                        }
                    }
                }
            }
            expect += led.costs();
        }
    }
    expect
}

#[test]
fn answers_in_submission_order_and_match_one_by_one() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let mut rng = SmallRng::seed_from_u64(0x57AE);
    let stream = random_stream(&mut rng, n as u32, 230);
    let mut srv = streaming_server(
        &conn,
        &bicon,
        AdmissionPolicy::builder()
            .max_batch(48)
            .max_queue(96)
            .cache_capacity(1 << 12)
            .build(),
    );
    let mut led = Ledger::new(OMEGA);
    let tickets: Vec<_> = stream
        .iter()
        .map(|&q| srv.submit(&mut led, q).unwrap())
        .collect();
    srv.drain(&mut led);
    let delivered = srv.take_ready();
    assert_eq!(delivered.len(), stream.len());

    let server1 =
        ShardedServer::new(conn.query_handle(), 1).with_biconnectivity(bicon.query_handle());
    for (i, (t, a)) in delivered.iter().enumerate() {
        assert_eq!(*t, tickets[i], "delivery out of submission order at {i}");
        let mut one = Ledger::new(OMEGA);
        assert_eq!(
            a.unwrap(),
            server1.answer_one(&mut one, stream[i]),
            "cached answer differs from the oracle at {i} ({:?})",
            stream[i]
        );
    }
    assert!(srv.try_next().is_none(), "nothing left after full delivery");
}

#[test]
fn hit_miss_cost_contract_exact_cold_then_warm() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let mut rng = SmallRng::seed_from_u64(0xCAC4E);
    // Narrow vertex range => repetition => cold-pass hits too.
    let stream = random_stream(&mut rng, 120, 260);
    let (max_batch, capacity) = (64usize, 1usize << 12);
    // max_queue above the stream length: no auto-flush, so micro-batches
    // are exactly the drain's consecutive max_batch-sized chunks — the
    // partition the replay below assumes. Routing/eviction pinned to the
    // legacy PR-3 configuration this replay prices; tests/affinity.rs
    // replays the affinity + CLOCK contract.
    let mut srv = streaming_server(
        &conn,
        &bicon,
        AdmissionPolicy::builder()
            .max_batch(max_batch)
            .max_queue(10_000)
            .cache_capacity(capacity)
            .routing(Routing::Contiguous)
            .eviction(Eviction::FillUntilFull)
            .build(),
    );
    let server1 =
        ShardedServer::new(conn.query_handle(), 1).with_biconnectivity(bicon.query_handle());

    // Cold pass.
    let mut cold = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut cold, q).unwrap();
    }
    srv.drain(&mut cold);
    assert_eq!(srv.take_ready().len(), stream.len());

    let mut sets = vec![Default::default(); SHARDS];
    let expect_cold = replay_expected_costs(&server1, &stream, max_batch, capacity, &mut sets);
    assert_eq!(cold.costs(), expect_cold, "cold-pass formula mismatch");

    let stats = srv.cache_stats();
    assert!(stats.hits > 0, "repetitive stream must hit even cold");
    assert!(stats.misses > 0);
    assert_eq!(
        cold.costs().asym_writes,
        stats.inserts * CACHE_INSERT_WRITES,
        "cache fills are the only writes"
    );

    // Warm pass: same stream, same partition, same per-shard key sets —
    // every probe hits, so the replay adds no miss costs and no fills.
    let mut warm = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut warm, q).unwrap();
    }
    srv.drain(&mut warm);
    assert_eq!(srv.take_ready().len(), stream.len());

    let expect_warm = replay_expected_costs(&server1, &stream, max_batch, capacity, &mut sets);
    assert_eq!(warm.costs(), expect_warm, "warm-pass formula mismatch");
    assert_eq!(
        warm.costs().asym_writes,
        0,
        "a fully warmed pass never writes"
    );
    let warm_stats = srv.cache_stats();
    assert_eq!(
        warm_stats.misses, stats.misses,
        "warmed pass must add zero misses"
    );
    // The warm pass is pure probes: input scan + one probe per endpoint.
    let probes = warm_stats.hits - stats.hits;
    assert_eq!(
        warm.costs().asym_reads,
        stream.len() as u64 * QUERY_WORDS + probes * CACHE_PROBE_READS,
        "hits charge only the cache-probe reads"
    );
}

#[test]
fn costs_bit_identical_across_parallelism() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let mut rng = SmallRng::seed_from_u64(0xD15C);
    let stream = random_stream(&mut rng, n as u32, 300);
    let run = |mut led: Ledger| {
        let mut srv = streaming_server(
            &conn,
            &bicon,
            AdmissionPolicy::builder()
                .max_batch(32)
                .max_queue(64)
                .cache_capacity(1 << 10)
                .build(),
        );
        for &q in &stream {
            srv.submit(&mut led, q).unwrap();
        }
        srv.drain(&mut led);
        let answers: Vec<(u64, Answer)> = srv
            .take_ready()
            .into_iter()
            .map(|(t, a)| (t.id(), a.unwrap()))
            .collect();
        let stats = srv.cache_stats();
        (
            answers,
            (stats.hits, stats.misses, stats.inserts, stats.entries),
            led.costs(),
            led.depth(),
            led.sym_peak(),
        )
    };
    let par = run(Ledger::new(OMEGA));
    let seq = run(Ledger::sequential(OMEGA));
    assert_eq!(par, seq, "streaming not bit-identical across parallelism");
}

#[test]
fn batch_size_one_dispatches_every_submission() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let mut srv = streaming_server(
        &conn,
        &bicon,
        AdmissionPolicy::builder().max_batch(1).max_queue(1).build(),
    );
    let mut led = Ledger::new(OMEGA);
    for (i, q) in [
        Query::Connected(0, 5),
        Query::Component(3),
        Query::TwoEdgeConnected(1, 2),
    ]
    .into_iter()
    .enumerate()
    {
        let t = srv.submit(&mut led, q).unwrap();
        assert_eq!(srv.queue_len(), 0, "batch size 1 dispatches immediately");
        let (got, _) = srv.try_next().expect("answer ready right after submit");
        assert_eq!(got, t);
        assert_eq!(t.id(), i as u64);
    }
}

#[test]
fn drain_ships_short_final_batch_when_queue_runs_out() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let mut rng = SmallRng::seed_from_u64(0x0DD);
    let stream = random_stream(&mut rng, n as u32, 300);
    let mut srv = streaming_server(
        &conn,
        &bicon,
        AdmissionPolicy::builder()
            .max_batch(128)
            .max_queue(10_000)
            .build(),
    );
    let mut led = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut led, q).unwrap();
    }
    assert_eq!(
        srv.queue_len(),
        300,
        "below max_queue: nothing auto-flushed"
    );
    // The queue drains mid-flush: two full micro-batches, then a short one.
    assert_eq!(srv.flush(&mut led), 128);
    assert_eq!(srv.flush(&mut led), 128);
    assert_eq!(srv.flush(&mut led), 44, "final short batch");
    assert_eq!(srv.flush(&mut led), 0, "empty queue flushes nothing");
    assert_eq!(srv.take_ready().len(), 300);
}

#[test]
fn capacity_zero_charges_exactly_the_sharded_batch_path() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    let stream = random_stream(&mut rng, n as u32, 150);
    let max_batch = 50usize;
    let mut srv = streaming_server(
        &conn,
        &bicon,
        AdmissionPolicy::builder()
            .max_batch(max_batch)
            .max_queue(10_000)
            .cache_capacity(0)
            .build(),
    );
    let mut led = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut led, q).unwrap();
    }
    srv.drain(&mut led);
    assert_eq!(srv.take_ready().len(), stream.len());
    let stats = srv.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.inserts), (0, 0, 0));

    // The same micro-batches through the plain sharded path.
    let sharded =
        ShardedServer::new(conn.query_handle(), SHARDS).with_biconnectivity(bicon.query_handle());
    let mut expect = Ledger::new(OMEGA);
    for chunk in stream.chunks(max_batch) {
        sharded.serve(&mut expect, chunk);
    }
    assert_eq!(
        led.costs(),
        expect.costs(),
        "capacity 0 must bypass the cache"
    );
    assert_eq!(led.depth(), expect.depth());
}

#[test]
fn tiny_capacity_bounds_fills_but_not_correctness() {
    let g = test_graph();
    let n = g.n();
    let pri = Priorities::random(n, 11);
    let verts: Vec<Vertex> = (0..n as u32).collect();
    let (conn, bicon) = build_oracles(&g, &pri, &verts);

    let mut rng = SmallRng::seed_from_u64(0x71C9);
    let stream = random_stream(&mut rng, n as u32, 200);
    let capacity = 4usize;
    let mut srv = streaming_server(
        &conn,
        &bicon,
        AdmissionPolicy::builder()
            .max_batch(32)
            .max_queue(64)
            .cache_capacity(capacity)
            .build(),
    );
    let mut led = Ledger::new(OMEGA);
    for &q in &stream {
        srv.submit(&mut led, q).unwrap();
    }
    srv.drain(&mut led);
    let delivered = srv.take_ready();
    assert_eq!(delivered.len(), stream.len());

    for shard in 0..SHARDS {
        let s = srv.shard_cache_stats(shard);
        assert!(
            s.entries <= capacity as u64,
            "shard {shard} holds {} > capacity {capacity}",
            s.entries
        );
        assert!(s.inserts <= s.misses, "fills cannot exceed misses");
    }
    let server1 =
        ShardedServer::new(conn.query_handle(), 1).with_biconnectivity(bicon.query_handle());
    for (i, (_, a)) in delivered.iter().enumerate() {
        let mut one = Ledger::new(OMEGA);
        assert_eq!(
            a.unwrap(),
            server1.answer_one(&mut one, stream[i]),
            "answer {i}"
        );
    }
}
