//! The wire protocol and tenancy contracts, exactly:
//!
//! 1. the codec is **total and lossless**: every frame round-trips
//!    bit-identically through `encode_frame` → `FrameBuf` (including
//!    byte-at-a-time delivery, and — exhaustively — every frame kind
//!    split at every byte boundary across two deliveries, with and
//!    without duplicated frames prepended), truncated frames wait
//!    instead of erroring, bad version / unknown kind bytes are rejected
//!    as *typed* errors with the stream staying synchronized, and
//!    arbitrary garbage never panics the decoder — for both protocol
//!    versions;
//! 2. deficit-round-robin fair share holds **exactly**: under a 10:1
//!    submission skew with equal weights, both tenants' dispatched counts
//!    advance in lockstep while both are backlogged, and a 3:1 weighting
//!    splits every contended micro-batch 3:1 — deterministic counts, not
//!    statistical bounds;
//! 3. the loopback frontend serves end to end: hello credentials gate
//!    tenant binding, per-connection windows reject the overflow request
//!    with a typed `Overloaded` error frame (never a dropped byte), quota
//!    rejections travel as error frames, and each tenant's answers arrive
//!    in its own submission order;
//! 4. wire-served costs are **bit-identical** to the in-process path plus
//!    exactly one `FRAME_DECODE_OPS` per inbound frame and one
//!    `FRAME_ENCODE_OPS` per outbound frame. CI runs this file under
//!    `WEC_THREADS ∈ {1, 2, 8, 16}`, pinning the equality at every
//!    parallelism level.

use wec::asym::{Costs, Ledger};
use wec::connectivity::{ConnectivityOracle, OracleBuildOpts};
use wec::graph::{gen, Csr, Priorities};
use wec::serve::{
    encode_frame, loopback_pair, AdmissionPolicy, Answer, FairShare, Frame, FrameBuf, Frontend,
    GoawayReason, LoopbackTransport, Overflow, Query, ServeError, ShardedServer, Snapshot,
    StreamingServer, TcpTransport, TenancyStats, TenantId, TenantSpec, Transport, WireFault,
    FRAME_DECODE_OPS, FRAME_ENCODE_OPS, MAX_FRAME_BYTES,
};

const OMEGA: u64 = 64;

/// Deterministic Weyl/LCG stream, the repo's bench idiom.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(2654435761).wrapping_add(12345);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn arb_query(r: &mut Lcg) -> Query {
    let u = r.below(1 << 20) as u32;
    let v = r.below(1 << 20) as u32;
    match r.below(4) {
        0 => Query::Connected(u, v),
        1 => Query::Component(u),
        2 => Query::TwoEdgeConnected(u, v),
        _ => Query::Biconnected(u, v),
    }
}

fn arb_answer(r: &mut Lcg) -> Answer {
    match r.below(5) {
        0 => Answer::Connected(r.below(2) == 0),
        1 => Answer::Component(wec::connectivity::ComponentId::Labeled(
            r.below(1 << 30) as u32
        )),
        2 => Answer::Component(wec::connectivity::ComponentId::Implicit(
            r.below(1 << 30) as u32
        )),
        3 => Answer::TwoEdgeConnected(r.below(2) == 0),
        _ => Answer::Biconnected(r.below(2) == 0),
    }
}

fn arb_fault(r: &mut Lcg) -> WireFault {
    match r.below(11) {
        0 => WireFault::UnknownKind(r.below(256) as u8),
        1 => WireFault::UnknownQueryKind(r.below(256) as u8),
        2 => WireFault::UnknownAnswerKind(r.below(256) as u8),
        3 => WireFault::UnknownErrorKind(r.below(256) as u8),
        4 => WireFault::Truncated,
        5 => WireFault::TrailingBytes,
        6 => WireFault::BadPayload,
        7 => WireFault::Oversize {
            len: r.below(1 << 31) as u32,
        },
        8 => WireFault::BadCredential,
        9 => WireFault::Rebind,
        _ => WireFault::UnexpectedFrame,
    }
}

fn arb_error(r: &mut Lcg) -> ServeError {
    match r.below(7) {
        0 => ServeError::UnsupportedQuery(arb_query(r)),
        1 => ServeError::Overloaded {
            queue_len: r.below(1 << 20) as usize,
            max_queue: r.below(1 << 20) as usize,
        },
        2 => ServeError::UnknownTenant(TenantId(r.below(1 << 16) as u16)),
        3 => ServeError::QuotaExceeded {
            tenant: TenantId(r.below(1 << 16) as u16),
            quota: r.below(1 << 30) as u32,
        },
        4 => ServeError::MalformedFrame(arb_fault(r)),
        5 => ServeError::ProtocolVersion {
            got: r.below(256) as u8,
        },
        _ => ServeError::ShuttingDown,
    }
}

fn arb_reason(r: &mut Lcg) -> GoawayReason {
    match r.below(3) {
        0 => GoawayReason::Shutdown,
        1 => GoawayReason::IdleTimeout,
        _ => GoawayReason::Misbehavior,
    }
}

fn arb_frame(r: &mut Lcg) -> Frame {
    match r.below(11) {
        0 => Frame::Hello {
            tenant: TenantId(r.below(1 << 16) as u16),
            credential: r.next(),
        },
        1 => Frame::Request {
            query: arb_query(r),
        },
        2 => Frame::Answer {
            ticket: r.next(),
            answer: arb_answer(r),
        },
        3 => Frame::Error {
            ticket: if r.below(2) == 0 {
                Some(r.next())
            } else {
                None
            },
            error: arb_error(r),
        },
        4 => Frame::HelloV2 {
            tenant: TenantId(r.below(1 << 16) as u16),
            credential: r.next(),
            session: r.next(),
        },
        5 => Frame::RequestV2 {
            corr: r.next(),
            query: arb_query(r),
        },
        6 => Frame::AnswerV2 {
            corr: r.next(),
            answer: arb_answer(r),
        },
        7 => Frame::ErrorV2 {
            corr: if r.below(2) == 0 {
                Some(r.next())
            } else {
                None
            },
            error: arb_error(r),
        },
        8 => Frame::Ping { nonce: r.next() },
        9 => Frame::Pong { nonce: r.next() },
        _ => Frame::Goaway {
            reason: arb_reason(r),
        },
    }
}

/// One representative frame per wire kind and version — the exhaustive
/// boundary sweep covers every encoder branch through these.
fn representative_frames() -> Vec<Frame> {
    vec![
        Frame::Hello {
            tenant: TenantId(7),
            credential: 0xfeed_beef_dead_cafe,
        },
        Frame::Request {
            query: Query::TwoEdgeConnected(123_456, 654_321),
        },
        Frame::Answer {
            ticket: u64::MAX - 3,
            answer: Answer::Component(wec::connectivity::ComponentId::Implicit(0x1234_5678)),
        },
        Frame::Error {
            ticket: Some(42),
            error: ServeError::QuotaExceeded {
                tenant: TenantId(9),
                quota: 17,
            },
        },
        Frame::Error {
            ticket: None,
            error: ServeError::MalformedFrame(WireFault::Oversize { len: 1 << 30 }),
        },
        Frame::HelloV2 {
            tenant: TenantId(7),
            credential: 0xfeed_beef_dead_cafe,
            session: 0x0102_0304_0506_0708,
        },
        Frame::RequestV2 {
            corr: 0xaaaa_bbbb_cccc_dddd,
            query: Query::Biconnected(1, 2),
        },
        Frame::AnswerV2 {
            corr: 3,
            answer: Answer::Connected(true),
        },
        Frame::ErrorV2 {
            corr: Some(u64::MAX),
            error: ServeError::ShuttingDown,
        },
        Frame::ErrorV2 {
            corr: None,
            error: ServeError::MalformedFrame(WireFault::Rebind),
        },
        Frame::Ping { nonce: 0x55aa },
        Frame::Pong { nonce: !0x55aa },
        Frame::Goaway {
            reason: GoawayReason::Shutdown,
        },
        Frame::Goaway {
            reason: GoawayReason::IdleTimeout,
        },
        Frame::Goaway {
            reason: GoawayReason::Misbehavior,
        },
    ]
}

/// Satellite sweep: every frame kind, split at **every** byte boundary
/// across two deliveries, decodes to exactly the original frame — no
/// desync, no phantom frame. The same holds with a duplicated copy of
/// the frame prepended (duplicated delivery must yield two identical
/// frames, not a parse error), again at every split point.
#[test]
fn codec_decodes_every_kind_at_every_split_boundary() {
    for frame in representative_frames() {
        let bytes = encode_frame(&frame);

        // Plain split: prefix waits, suffix completes.
        for cut in 0..=bytes.len() {
            let mut fb = FrameBuf::default();
            fb.extend(&bytes[..cut]);
            if cut < bytes.len() {
                assert_eq!(fb.next_frame(), None, "{frame:?} prefix {cut} must wait");
            }
            fb.extend(&bytes[cut..]);
            assert_eq!(fb.next_frame(), Some(Ok(frame)), "{frame:?} split at {cut}");
            assert_eq!(fb.next_frame(), None, "no phantom frame after {frame:?}");
            assert_eq!(fb.pending(), 0);
        }

        // Duplicated delivery: the doubled stream, split at every
        // boundary, decodes to exactly two copies.
        let doubled: Vec<u8> = bytes.iter().chain(bytes.iter()).copied().collect();
        for cut in 0..=doubled.len() {
            let mut fb = FrameBuf::default();
            fb.extend(&doubled[..cut]);
            let mut got = Vec::new();
            while let Some(f) = fb.next_frame() {
                got.push(f);
            }
            fb.extend(&doubled[cut..]);
            while let Some(f) = fb.next_frame() {
                got.push(f);
            }
            assert_eq!(
                got,
                vec![Ok(frame), Ok(frame)],
                "{frame:?} duplicated, split at {cut}"
            );
            assert_eq!(fb.pending(), 0);
        }
    }
}

/// Property sweep: 2000 arbitrary frames round-trip bit-identically, both
/// in one contiguous buffer and delivered one byte at a time, and every
/// encoding respects the frame cap.
#[test]
fn codec_round_trips_arbitrary_frames() {
    let mut r = Lcg(0x5eed);
    let frames: Vec<Frame> = (0..2000).map(|_| arb_frame(&mut r)).collect();

    // One contiguous stream.
    let mut fb = FrameBuf::default();
    for f in &frames {
        let bytes = encode_frame(f);
        assert!(bytes.len() - 4 <= MAX_FRAME_BYTES, "cap respected");
        fb.extend(&bytes);
    }
    for f in &frames {
        assert_eq!(fb.next_frame(), Some(Ok(*f)));
    }
    assert_eq!(fb.next_frame(), None);
    assert_eq!(fb.pending(), 0);

    // Byte-at-a-time delivery of a sample must produce the same frames.
    let mut fb = FrameBuf::default();
    for f in frames.iter().take(50) {
        for b in encode_frame(f) {
            fb.extend(&[b]);
        }
        assert_eq!(fb.next_frame(), Some(Ok(*f)));
        assert_eq!(fb.next_frame(), None, "no phantom frame");
    }
}

/// A truncated frame waits for more bytes; a bad version or unknown kind
/// is consumed as a typed error and the *next* frame still decodes — the
/// stream never desynchronizes.
#[test]
fn codec_rejects_bad_version_and_kind_without_losing_sync() {
    let good = Frame::Request {
        query: Query::Connected(1, 2),
    };
    let bytes = encode_frame(&good);

    // Truncation: every proper prefix decodes to "not yet".
    for cut in 0..bytes.len() {
        let mut fb = FrameBuf::default();
        fb.extend(&bytes[..cut]);
        assert_eq!(fb.next_frame(), None, "prefix of {cut} bytes must wait");
    }

    // Bad version byte (neither v1 nor v2), then a good frame.
    let mut bad = bytes.clone();
    bad[4] = 99;
    let mut fb = FrameBuf::default();
    fb.extend(&bad);
    fb.extend(&bytes);
    assert_eq!(
        fb.next_frame(),
        Some(Err(ServeError::ProtocolVersion { got: 99 }))
    );
    assert_eq!(fb.next_frame(), Some(Ok(good)), "stream stays in sync");

    // Unknown kind byte, then a good frame.
    let mut bad = bytes.clone();
    bad[5] = 99;
    let mut fb = FrameBuf::default();
    fb.extend(&bad);
    fb.extend(&bytes);
    assert_eq!(
        fb.next_frame(),
        Some(Err(ServeError::MalformedFrame(WireFault::UnknownKind(99))))
    );
    assert_eq!(fb.next_frame(), Some(Ok(good)));
}

/// Arbitrary garbage never panics the decoder: every outcome is a frame,
/// a typed error, or "feed more bytes".
#[test]
fn codec_survives_garbage() {
    let mut r = Lcg(0xbad5eed);
    for _ in 0..200 {
        let mut fb = FrameBuf::default();
        let n = 1 + r.below(300) as usize;
        let junk: Vec<u8> = (0..n).map(|_| r.below(256) as u8).collect();
        fb.extend(&junk);
        // Drain until the buffer demands more bytes; each step must be
        // total (this would panic or hang if decoding weren't).
        for _ in 0..n + 4 {
            if fb.next_frame().is_none() {
                break;
            }
        }
    }
}

fn oracle_fixture() -> (Csr, Priorities, Vec<u32>) {
    let g = gen::bounded_degree_connected(300, 4, 60, 7);
    let pri = Priorities::random(g.n(), 3);
    let verts: Vec<u32> = (0..g.n() as u32).collect();
    (g, pri, verts)
}

/// Under a 10:1 submission skew with equal weights, DRR keeps both
/// tenants' dispatched counts in lockstep while both are backlogged
/// (the ±10% acceptance bound is met with exact equality), and the
/// slow tenant is never starved.
#[test]
fn fair_share_splits_contended_batches_equally() {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let hot = TenantId(1);
    let cold = TenantId(2);
    let policy = AdmissionPolicy::builder()
        .max_batch(16)
        .max_queue(1 << 20)
        .fair_share(FairShare::DRR)
        .tenants([TenantSpec::new(1), TenantSpec::new(2)])
        .build();
    let mut srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy);

    // 10:1 interleaved arrivals: 400 hot, 40 cold.
    let mut r = Lcg(7);
    for i in 0..440u32 {
        let t = if i % 11 == 10 { cold } else { hot };
        let v = r.below(g.n() as u64) as u32;
        srv.submit_as(&mut led, t, Query::Component(v)).unwrap();
    }

    // While the cold tenant is backlogged, every flush must advance both
    // tenants identically: 16-query batches split 8/8.
    let mut flushes = 0;
    while srv.tenant_stats(cold).unwrap().dispatched < 40 {
        assert_eq!(srv.flush(&mut led), 16);
        flushes += 1;
        let h = srv.tenant_stats(hot).unwrap().dispatched;
        let c = srv.tenant_stats(cold).unwrap().dispatched;
        assert_eq!(h, c, "equal weights ⇒ lockstep under contention");
    }
    assert_eq!(flushes, 5, "40 cold queries at 8 per contended batch");

    // Once the cold queue drains, the hot tenant gets full batches.
    while srv.queue_len() > 0 {
        srv.flush(&mut led);
    }
    let stats: TenancyStats = Snapshot::<TenancyStats>::snapshot(&srv);
    assert_eq!(stats.dispatched, 440);
    assert_eq!(stats.quota_rejections, 0);

    // Everything is delivered, each tenant in its own submission order.
    let mut last = [None::<u64>; 3];
    let mut delivered = 0;
    while let Some((t, r)) = srv.try_next() {
        assert!(r.is_ok());
        delivered += 1;
        let ti = if t.id() % 11 == 10 { 2 } else { 1 };
        assert!(last[ti].is_none_or(|p| p < t.id()), "per-tenant order");
        last[ti] = Some(t.id());
    }
    assert_eq!(delivered, 440);
    assert_eq!(srv.tenant_stats(hot).unwrap().delivered, 400);
    assert_eq!(srv.tenant_stats(cold).unwrap().delivered, 40);
}

/// A 3:1 weight ratio splits every contended micro-batch exactly 12/4.
#[test]
fn weighted_fair_share_honors_weights() {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let policy = AdmissionPolicy::builder()
        .max_batch(16)
        .max_queue(1 << 20)
        .fair_share(FairShare::DRR)
        .tenant(TenantSpec::new(1).weight(3))
        .tenant(TenantSpec::new(2).weight(1))
        .build();
    let mut srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy);

    for i in 0..160u32 {
        let t = TenantId(1 + (i % 2) as u16);
        srv.submit_as(&mut led, t, Query::Component(i % g.n() as u32))
            .unwrap();
    }
    assert_eq!(srv.flush(&mut led), 16);
    let a = srv.tenant_stats(TenantId(1)).unwrap().dispatched;
    let b = srv.tenant_stats(TenantId(2)).unwrap().dispatched;
    assert_eq!((a, b), (12, 4), "weight 3:1 ⇒ 12/4 in a contended batch");
}

/// Quotas bound *queued* submissions: the rejection is typed, consumes no
/// ticket, and clears as soon as the backlog drains.
#[test]
fn quotas_bound_queued_submissions() {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let policy = AdmissionPolicy::builder()
        .max_batch(4)
        .max_queue(1 << 20)
        .overflow(Overflow::Shed)
        .tenant(TenantSpec::new(1).quota(3))
        .build();
    let mut srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy);

    let t = TenantId(1);
    for _ in 0..3 {
        srv.submit_as(&mut led, t, Query::Component(5)).unwrap();
    }
    assert_eq!(
        srv.submit_as(&mut led, t, Query::Component(5)),
        Err(ServeError::QuotaExceeded {
            tenant: t,
            quota: 3
        })
    );
    assert_eq!(
        srv.submit_as(&mut led, TenantId(9), Query::Component(5)),
        Err(ServeError::UnknownTenant(TenantId(9)))
    );
    srv.flush(&mut led);
    srv.submit_as(&mut led, t, Query::Component(6))
        .expect("drained backlog frees quota");
    assert_eq!(srv.tenant_stats(t).unwrap().quota_rejections, 1);
}

fn client_send(client: &mut LoopbackTransport, f: &Frame) {
    client.send(&encode_frame(f)).unwrap();
}

fn client_recv_all(client: &mut LoopbackTransport, rx: &mut FrameBuf) -> Vec<Frame> {
    let mut buf = [0u8; 512];
    loop {
        match client.recv(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => rx.extend(&buf[..n]),
        }
    }
    let mut out = Vec::new();
    while let Some(f) = rx.next_frame() {
        out.push(f.expect("server frames are well-formed"));
    }
    out
}

/// End-to-end over loopback: hello credentials gate binding, windows
/// reject overflow with a typed error frame, answers return per tenant in
/// submission order, and a second connection is unaffected throughout.
#[test]
fn frontend_serves_loopback_connections() {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let policy = AdmissionPolicy::builder()
        .max_batch(8)
        .max_queue(1 << 20)
        .fair_share(FairShare::DRR)
        .tenant(TenantSpec::new(1).credential(0xfeed))
        .tenant(TenantSpec::new(2))
        .build();
    let srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy);
    let mut fe = Frontend::new(srv).with_window(4);

    let (mut alice, fe_a) = loopback_pair();
    let (mut bob, fe_b) = loopback_pair();
    let ca = fe.connect(Box::new(fe_a));
    let cb = fe.connect(Box::new(fe_b));
    let (mut rx_a, mut rx_b) = (FrameBuf::default(), FrameBuf::default());

    // A wrong credential is rejected in-band; the right one binds.
    client_send(
        &mut alice,
        &Frame::Hello {
            tenant: TenantId(1),
            credential: 0xdead,
        },
    );
    fe.pump(&mut led);
    assert_eq!(
        client_recv_all(&mut alice, &mut rx_a),
        vec![Frame::Error {
            ticket: None,
            error: ServeError::MalformedFrame(WireFault::BadCredential),
        }]
    );
    client_send(
        &mut alice,
        &Frame::Hello {
            tenant: TenantId(1),
            credential: 0xfeed,
        },
    );
    client_send(
        &mut bob,
        &Frame::Hello {
            tenant: TenantId(2),
            credential: 0,
        },
    );

    // Alice sends 6 requests against a window of 4: the last two get
    // typed Overloaded error frames; Bob's single request is unaffected.
    for i in 0..6u32 {
        client_send(
            &mut alice,
            &Frame::Request {
                query: Query::Component(i),
            },
        );
    }
    client_send(
        &mut bob,
        &Frame::Request {
            query: Query::Connected(0, 299),
        },
    );
    fe.pump(&mut led);
    let stats = fe.frontend_stats();
    assert_eq!(stats.hellos_accepted, 2);
    assert_eq!(stats.hellos_rejected, 1);
    assert_eq!(stats.rejected_window, 2);
    assert_eq!(stats.admitted, 5);

    let to_alice = client_recv_all(&mut alice, &mut rx_a);
    let overloaded: Vec<&Frame> = to_alice
        .iter()
        .filter(|f| {
            matches!(
                f,
                Frame::Error {
                    ticket: None,
                    error: ServeError::Overloaded {
                        queue_len: 4,
                        max_queue: 4,
                    },
                }
            )
        })
        .collect();
    assert_eq!(overloaded.len(), 2, "window overflow is answered, typed");
    let answers: Vec<u64> = to_alice
        .iter()
        .filter_map(|f| match f {
            Frame::Answer { ticket, .. } => Some(*ticket),
            _ => None,
        })
        .collect();
    assert_eq!(answers, vec![0, 1, 2, 3], "in submission order");
    assert_eq!(fe.conn_in_flight(ca), 0);

    let to_bob = client_recv_all(&mut bob, &mut rx_b);
    assert_eq!(to_bob.len(), 1);
    match to_bob[0] {
        Frame::Answer { ticket: 4, answer } => {
            assert_eq!(answer.as_bool(), Some(true), "fixture graph is connected")
        }
        ref other => panic!("expected bob's answer, got {other:?}"),
    }
    assert_eq!(fe.conn_in_flight(cb), 0);
    assert!(!fe.conn_closed(ca) && !fe.conn_closed(cb));

    // An inbound answer frame is a protocol violation — answered, typed.
    client_send(
        &mut bob,
        &Frame::Answer {
            ticket: 0,
            answer: Answer::Connected(true),
        },
    );
    fe.pump(&mut led);
    assert_eq!(
        client_recv_all(&mut bob, &mut rx_b),
        vec![Frame::Error {
            ticket: None,
            error: ServeError::MalformedFrame(WireFault::UnexpectedFrame),
        }]
    );
}

/// A second `Hello` on an already-bound connection — v1 or v2 — is a
/// typed in-band `Rebind` error, never a panic or a silent drop, and the
/// connection keeps serving afterwards.
#[test]
fn frontend_answers_double_hello_with_typed_rebind() {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let policy = AdmissionPolicy::builder()
        .max_batch(8)
        .max_queue(1 << 10)
        .tenants([TenantSpec::new(1), TenantSpec::new(2)])
        .build();
    let srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy);
    let mut fe = Frontend::new(srv);

    // v1: bind, then try to rebind.
    let (mut v1, s1) = loopback_pair();
    let c1 = fe.connect(Box::new(s1));
    let mut rx1 = FrameBuf::default();
    let hello = Frame::Hello {
        tenant: TenantId(1),
        credential: 0,
    };
    client_send(&mut v1, &hello);
    fe.pump(&mut led);
    client_send(&mut v1, &hello);
    fe.pump(&mut led);
    assert_eq!(
        client_recv_all(&mut v1, &mut rx1),
        vec![Frame::Error {
            ticket: None,
            error: ServeError::MalformedFrame(WireFault::Rebind),
        }]
    );

    // v2: same contract, the error travels as a v2 frame.
    let (mut v2, s2) = loopback_pair();
    fe.connect(Box::new(s2));
    let mut rx2 = FrameBuf::default();
    let hello2 = Frame::HelloV2 {
        tenant: TenantId(2),
        credential: 0,
        session: 77,
    };
    client_send(&mut v2, &hello2);
    fe.pump(&mut led);
    client_send(&mut v2, &hello2);
    fe.pump(&mut led);
    assert_eq!(
        client_recv_all(&mut v2, &mut rx2),
        vec![Frame::ErrorV2 {
            corr: None,
            error: ServeError::MalformedFrame(WireFault::Rebind),
        }]
    );
    assert_eq!(fe.frontend_stats().malformed_frames, 2);
    assert_eq!(fe.frontend_stats().sessions_bound, 1);

    // Both connections still serve.
    client_send(
        &mut v1,
        &Frame::Request {
            query: Query::Connected(0, 1),
        },
    );
    client_send(
        &mut v2,
        &Frame::RequestV2 {
            corr: 5,
            query: Query::Connected(0, 1),
        },
    );
    fe.drain(&mut led);
    assert!(matches!(
        client_recv_all(&mut v1, &mut rx1).as_slice(),
        [Frame::Answer { .. }]
    ));
    assert!(matches!(
        client_recv_all(&mut v2, &mut rx2).as_slice(),
        [Frame::AnswerV2 { corr: 5, .. }]
    ));
    assert!(!fe.conn_closed(c1));
}

/// Graceful shutdown: `begin_shutdown` announces `Goaway` on every live
/// connection, everything already admitted drains to a delivered answer,
/// and any frame submitted after the announcement — request or hello —
/// is answered with a typed `ShuttingDown` error, never a panic or a
/// silent drop. Once the drain completes the connection closes.
#[test]
fn frontend_goaway_drains_in_flight_and_rejects_new_work() {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    // max_batch(1): one query dispatched per pump, so work stays in
    // flight across the shutdown announcement.
    let policy = AdmissionPolicy::builder()
        .max_batch(1)
        .max_queue(1 << 10)
        .build();
    let srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy);
    let mut fe = Frontend::new(srv);
    let (mut client, s) = loopback_pair();
    let conn = fe.connect(Box::new(s));
    let mut rx = FrameBuf::default();

    for u in 0..3u32 {
        client_send(
            &mut client,
            &Frame::Request {
                query: Query::Connected(u, u + 1),
            },
        );
    }
    fe.pump(&mut led);
    assert_eq!(fe.frontend_stats().admitted, 3);
    assert!(fe.conn_in_flight(conn) > 0, "work in flight at shutdown");

    fe.begin_shutdown(&mut led);
    assert!(fe.is_shutting_down());

    // Post-announcement submissions are rejected, typed.
    client_send(
        &mut client,
        &Frame::Request {
            query: Query::Connected(0, 1),
        },
    );
    client_send(
        &mut client,
        &Frame::Hello {
            tenant: TenantId(1),
            credential: 0,
        },
    );
    let report = fe.shutdown(&mut led);
    assert_eq!(report.admitted, 0, "nothing new admitted while draining");

    let frames = client_recv_all(&mut client, &mut rx);
    let answers = frames
        .iter()
        .filter(|f| matches!(f, Frame::Answer { .. }))
        .count();
    let shutdown_errors = frames
        .iter()
        .filter(|f| {
            matches!(
                f,
                Frame::Error {
                    ticket: None,
                    error: ServeError::ShuttingDown,
                }
            )
        })
        .count();
    assert_eq!(answers, 3, "every in-flight ticket drained to an answer");
    assert_eq!(shutdown_errors, 2, "request and hello both rejected typed");
    assert!(
        frames.iter().any(|f| matches!(
            f,
            Frame::Goaway {
                reason: GoawayReason::Shutdown
            }
        )),
        "shutdown was announced"
    );
    assert!(fe.conn_closed(conn), "drained connection closed");
    assert_eq!(fe.frontend_stats().rejected_shutdown, 2);
    assert_eq!(fe.server().undelivered(), 0, "nothing abandoned");
}

/// Serving through the wire charges exactly the in-process costs plus one
/// `FRAME_DECODE_OPS` per inbound frame and one `FRAME_ENCODE_OPS` per
/// outbound frame — nothing else. Run under the `WEC_THREADS` matrix this
/// pins wire-served costs bit-identical at every parallelism level.
#[test]
fn wire_costs_equal_in_process_costs_plus_frame_ops() {
    let (g, pri, verts) = oracle_fixture();
    let mut build_led = Ledger::new(OMEGA);
    let k = build_led.sqrt_omega();
    let oracle = ConnectivityOracle::build(
        &mut build_led,
        &g,
        &pri,
        &verts,
        k,
        1,
        OracleBuildOpts::default(),
    );
    let policy = || {
        AdmissionPolicy::builder()
            .max_batch(8)
            .max_queue(1 << 20)
            .fair_share(FairShare::DRR)
            .tenants([TenantSpec::new(1), TenantSpec::new(2)])
            .build()
    };
    let mut r = Lcg(99);
    let script: Vec<(TenantId, Query)> = (0..120)
        .map(|i| {
            (
                TenantId(1 + (i % 3 == 0) as u16),
                Query::Component(r.below(g.n() as u64) as u32),
            )
        })
        .collect();

    // Wire path: two authenticated connections, drained to completion.
    let mut wire_led = Ledger::new(OMEGA);
    let srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy());
    let mut fe = Frontend::new(srv);
    let (mut c1, s1) = loopback_pair();
    let (mut c2, s2) = loopback_pair();
    fe.connect(Box::new(s1));
    fe.connect(Box::new(s2));
    client_send(
        &mut c1,
        &Frame::Hello {
            tenant: TenantId(1),
            credential: 0,
        },
    );
    client_send(
        &mut c2,
        &Frame::Hello {
            tenant: TenantId(2),
            credential: 0,
        },
    );
    for &(t, q) in &script {
        let client = if t == TenantId(1) { &mut c1 } else { &mut c2 };
        client_send(client, &Frame::Request { query: q });
    }
    fe.drain(&mut wire_led);
    let fs = fe.frontend_stats();
    assert_eq!(fs.admitted, 120);
    assert_eq!(fs.answers_delivered, 120);
    assert_eq!(fs.frames_in, 122, "2 hellos + 120 requests");
    assert_eq!(fs.frames_out, 120);

    // In-process replay: same submissions in the same order (the pump
    // ingests connection 1 fully, then connection 2), same flush cadence.
    let mut direct_led = Ledger::new(OMEGA);
    let srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy());
    let mut srv = srv;
    for &(t, q) in script.iter().filter(|(t, _)| *t == TenantId(1)) {
        srv.submit_as(&mut direct_led, t, q).unwrap();
    }
    for &(t, q) in script.iter().filter(|(t, _)| *t == TenantId(2)) {
        srv.submit_as(&mut direct_led, t, q).unwrap();
    }
    let mut delivered = 0;
    while srv.queue_len() > 0 {
        srv.flush(&mut direct_led);
        delivered += srv.take_ready().len();
    }
    assert_eq!(delivered, 120);

    let frame_ops = fs.frames_in * FRAME_DECODE_OPS + fs.frames_out * FRAME_ENCODE_OPS;
    let expect = Costs {
        sym_ops: direct_led.costs().sym_ops + frame_ops,
        ..direct_led.costs()
    };
    assert_eq!(wire_led.costs(), expect, "wire = in-process + frame ops");
}

/// End-to-end over a real TCP socket: the same `Frontend`, a
/// `TcpTransport` on each side. Off by default — CI sandboxes need not
/// grant networking — run with `WEC_WIRE_TCP=1 cargo test --test wire`.
#[test]
fn frontend_serves_tcp_connections_when_enabled() {
    if std::env::var("WEC_WIRE_TCP").as_deref() != Ok("1") {
        eprintln!("skipping the TCP leg (set WEC_WIRE_TCP=1 to enable)");
        return;
    }
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let mut client = TcpTransport::connect(addr).expect("connect");
    let (accepted, _) = listener.accept().expect("accept");
    let accepted = TcpTransport::from_stream(accepted).expect("wrap");

    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let policy = AdmissionPolicy::builder()
        .max_batch(8)
        .max_queue(1 << 10)
        .build();
    let srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy);
    let mut fe = Frontend::new(srv).with_window(8);
    fe.connect(Box::new(accepted));

    const QUERIES: usize = 8;
    for u in 0..QUERIES as u32 {
        client
            .send(&encode_frame(&Frame::Request {
                query: Query::Connected(u, u + 1),
            }))
            .unwrap();
    }

    // TCP delivery is asynchronous: keep pumping until every answer lands
    // (bounded so a broken stack fails instead of hanging).
    let mut rx = FrameBuf::default();
    let mut answers = Vec::new();
    for _ in 0..100_000 {
        fe.pump(&mut led);
        let mut buf = [0u8; 512];
        loop {
            match client.recv(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => rx.extend(&buf[..n]),
            }
        }
        while let Some(f) = rx.next_frame() {
            answers.push(f.expect("server frames are well-formed"));
        }
        if answers.len() == QUERIES {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(answers.len(), QUERIES, "all TCP answers delivered");
    for (i, f) in answers.iter().enumerate() {
        match f {
            Frame::Answer { ticket, answer } => {
                assert_eq!(*ticket, i as u64, "tickets in submission order");
                assert_eq!(
                    answer.as_bool(),
                    Some(true),
                    "the fixture graph is connected"
                );
            }
            other => panic!("expected an answer frame, got {other:?}"),
        }
    }
}
