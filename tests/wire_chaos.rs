//! The chaos-hardened wire contracts, exactly:
//!
//! 1. **exactly-once under byte faults** — a seeded 10‰ byte-fault plan
//!    (short reads/writes, mid-frame disconnects, stalls, duplicated
//!    delivery) over 1200+ wire queries from retrying clients completes
//!    every request with exactly one answer per correlation id, and the
//!    whole run — costs, frontend stats, client stats, every delivered
//!    answer — is bit-reproducible across reruns (CI also pins it across
//!    `WEC_THREADS ∈ {1, 2, 8, 16}` and in the fault matrix);
//! 2. **zero-knob transparency** — wrapping every connection in a
//!    `ChaosTransport` with no knobs raised leaves a wire workload's
//!    costs and stats bit-identical to bare transports;
//! 3. **connection lifecycle** — keepalive pings keep a quiet-but-alive
//!    client connected, a truly idle one is told `Goaway(IdleTimeout)`
//!    and closed, repeated malformed frames escalate through typed
//!    errors to `Goaway(Misbehavior)`, and a slow client backpressures
//!    into a bounded send queue without ever losing a frame.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wec::asym::{Costs, Ledger};
use wec::connectivity::{ConnectivityOracle, OracleBuildOpts};
use wec::graph::{gen, Csr, Priorities};
use wec::serve::{
    encode_frame, loopback_listener, loopback_pair, AdmissionPolicy, ChaosConnector,
    ChaosTransport, ClientStats, Frame, FrameBuf, Frontend, FrontendStats, GoawayReason,
    LifecyclePolicy, Query, RetryPolicy, ServeError, ShardedServer, StreamingServer, Transport,
    TransportError, WireClient, WireFault, WireFaultPlan,
};

const OMEGA: u64 = 64;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(2654435761).wrapping_add(12345);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn oracle_fixture() -> (Csr, Priorities, Vec<u32>) {
    let g = gen::bounded_degree_connected(300, 4, 60, 7);
    let pri = Priorities::random(g.n(), 3);
    let verts: Vec<u32> = (0..g.n() as u32).collect();
    (g, pri, verts)
}

/// One full chaos run: `clients` retrying clients submit `per_client`
/// queries each through byte-fault-injected connections into one
/// frontend; returns everything observable so reruns can be compared
/// bit-for-bit.
#[allow(clippy::type_complexity)]
fn chaos_run(
    seed: u64,
    per_mille: u16,
    clients: usize,
    per_client: usize,
) -> (
    Costs,
    FrontendStats,
    Vec<(ClientStats, Costs)>,
    Vec<(usize, u64, bool)>,
) {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let policy = AdmissionPolicy::builder()
        .max_batch(8)
        .max_queue(1 << 20)
        .build();
    let srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy);
    let mut fe = Frontend::new(srv).with_lifecycle(LifecyclePolicy {
        max_strikes: 8,
        ..LifecyclePolicy::default()
    });

    let (connector, listener) = loopback_listener();
    let mut workers: Vec<(WireClient, Ledger)> = (0..clients)
        .map(|i| {
            // Distinct seeds per client: diverse fault streams, still
            // fully deterministic.
            let plan = WireFaultPlan::seeded(seed ^ (i as u64) << 32).with_all(per_mille);
            let client = WireClient::new(
                Box::new(ChaosConnector::new(connector.clone(), plan)),
                0xc11e_0000 + i as u64,
            )
            .with_retry(RetryPolicy {
                window: 8,
                response_deadline: 6,
                ..RetryPolicy::default()
            });
            (client, Ledger::new(OMEGA))
        })
        .collect();

    let mut r = Lcg(seed | 1);
    for (client, _) in workers.iter_mut() {
        for _ in 0..per_client {
            let (u, v) = (r.below(g.n() as u64) as u32, r.below(g.n() as u64) as u32);
            client.submit(Query::Connected(u, v));
        }
    }

    let mut serve_led = Ledger::new(OMEGA);
    let mut outcomes: Vec<(usize, u64, bool)> = Vec::new();
    for _round in 0..200_000 {
        while let Some(t) = listener.accept() {
            fe.connect(Box::new(t));
        }
        for (i, (client, cled)) in workers.iter_mut().enumerate() {
            for (corr, result) in client.tick(cled) {
                let connected = result
                    .expect("queries are answerable")
                    .as_bool()
                    .expect("Connected answers carry a bool");
                outcomes.push((i, corr, connected));
            }
        }
        fe.pump(&mut serve_led);
        if workers.iter().all(|(c, _)| c.is_idle()) {
            break;
        }
    }

    let client_obs = workers
        .iter()
        .map(|(c, l)| (c.client_stats(), l.costs()))
        .collect();
    (serve_led.costs(), fe.frontend_stats(), client_obs, outcomes)
}

/// The tentpole acceptance: 4 retrying clients × 320 queries under a
/// seeded 10‰ byte-fault plan. Every client observes exactly-once
/// answers — completeness 1.0, zero duplicate deliveries to the
/// application — and the entire run is bit-reproducible.
#[test]
fn chaos_ten_per_mille_exactly_once_and_reproducible() {
    let (costs, fstats, cstats, outcomes) = chaos_run(0xc4a05, 10, 4, 320);

    // Completeness 1.0: every submitted correlation id answered.
    assert_eq!(outcomes.len(), 4 * 320, "completeness 1.0 under chaos");
    let mut seen = std::collections::HashSet::new();
    for &(client, corr, _) in &outcomes {
        assert!(seen.insert((client, corr)), "exactly one answer per corr");
    }
    for (stats, _) in &cstats {
        assert_eq!(stats.answers, 320);
    }

    // The plan actually injected: the run survived real faults, it
    // didn't dodge them.
    let reconnects: u64 = cstats.iter().map(|(s, _)| s.reconnects).sum();
    let resubmitted: u64 = cstats.iter().map(|(s, _)| s.resubmitted).sum();
    assert!(
        reconnects > 0,
        "10‰ disconnects must fire across ~4×320 frames"
    );
    assert!(resubmitted > 0, "reconnects resubmit unacknowledged work");
    assert!(
        fstats.sessions_rebound > 0,
        "sessions survive reconnects server-side"
    );
    assert!(
        fstats.dup_requests_suppressed + fstats.dup_answers_replayed > 0,
        "the dedup window did real work"
    );

    // Bit-reproducible: an identical rerun observes identical
    // everything.
    let rerun = chaos_run(0xc4a05, 10, 4, 320);
    assert_eq!(rerun.0, costs, "server costs reproduce");
    assert_eq!(rerun.1, fstats, "frontend stats reproduce");
    assert_eq!(rerun.2, cstats, "client stats and costs reproduce");
    assert_eq!(rerun.3, outcomes, "every delivered answer reproduces");

    // A different seed is a different (but internally consistent) run.
    let other = chaos_run(0x5eed, 10, 4, 320);
    assert_eq!(other.3.len(), 4 * 320);
    assert_ne!(
        (other.0, other.1),
        (costs, fstats),
        "seeds matter — this is injection, not a no-op"
    );
}

/// Zero-knob transparency: the same wire workload served through
/// `ChaosTransport`-wrapped connections with no knobs raised has
/// bit-identical costs and stats to bare transports — chaos off is
/// exactly the production path.
#[test]
fn zero_knob_chaos_run_is_bit_identical_to_bare_transports() {
    let run = |wrap: bool| -> (Costs, FrontendStats) {
        let (g, pri, verts) = oracle_fixture();
        let mut led = Ledger::new(OMEGA);
        let k = led.sqrt_omega();
        let oracle =
            ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
        let policy = AdmissionPolicy::builder()
            .max_batch(8)
            .max_queue(1 << 20)
            .build();
        let srv = StreamingServer::new(ShardedServer::new(oracle.query_handle(), 3), policy);
        let mut fe = Frontend::new(srv);
        let (mut client, server_end) = loopback_pair();
        if wrap {
            fe.connect(Box::new(ChaosTransport::new(
                server_end,
                WireFaultPlan::seeded(42),
                0,
            )));
        } else {
            fe.connect(Box::new(server_end));
        }

        let mut wire_led = Ledger::new(OMEGA);
        let mut r = Lcg(7);
        for _ in 0..100 {
            let q = Query::Connected(r.below(300) as u32, r.below(300) as u32);
            client
                .send(&encode_frame(&Frame::Request { query: q }))
                .unwrap();
        }
        fe.drain(&mut wire_led);
        let mut buf = [0u8; 512];
        let mut rx = FrameBuf::default();
        let mut answers = 0;
        loop {
            match client.recv(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => rx.extend(&buf[..n]),
            }
        }
        while let Some(f) = rx.next_frame() {
            assert!(matches!(f, Ok(Frame::Answer { .. })));
            answers += 1;
        }
        assert_eq!(answers, 100);
        (wire_led.costs(), fe.frontend_stats())
    };
    assert_eq!(run(true), run(false), "zero-knob chaos is invisible");
}

/// Keepalive: a connection with nothing to say stays open as long as it
/// answers pings; the client-side `WireClient` answers them as part of
/// its tick.
#[test]
fn keepalive_pings_hold_a_quiet_connection_open() {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let srv = StreamingServer::new(
        ShardedServer::new(oracle.query_handle(), 2),
        AdmissionPolicy::builder().build(),
    );
    let mut fe = Frontend::new(srv).with_lifecycle(LifecyclePolicy {
        idle_deadline: 2,
        ping_grace: 3,
        ..LifecyclePolicy::default()
    });

    let (connector, listener) = loopback_listener();
    let mut client = WireClient::new(Box::new(connector), 1);
    let mut cled = Ledger::new(OMEGA);

    // Connect and complete one query, then go quiet (but keep ticking).
    client.submit(Query::Connected(0, 1));
    let mut done = false;
    for _ in 0..40 {
        while let Some(t) = listener.accept() {
            fe.connect(Box::new(t));
        }
        done |= !client.tick(&mut cled).is_empty();
        fe.pump(&mut led);
    }
    assert!(done, "the query completed");
    let fstats = fe.frontend_stats();
    assert!(fstats.pings_sent > 0, "idle deadline pinged the connection");
    assert_eq!(fstats.idle_closed, 0, "answered pings keep it open");
    assert_eq!(fstats.conns_closed, 0);
    assert!(client.client_stats().pings_answered > 0);
    assert_eq!(client.client_stats().reconnects, 0, "never kicked off");
}

/// Idle eviction: a connection that answers nothing — not even the ping
/// — is told `Goaway(IdleTimeout)` and closed, in bounded model time.
#[test]
fn idle_connection_is_pinged_then_goaway_closed() {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let srv = StreamingServer::new(
        ShardedServer::new(oracle.query_handle(), 2),
        AdmissionPolicy::builder().build(),
    );
    let mut fe = Frontend::new(srv).with_lifecycle(LifecyclePolicy {
        idle_deadline: 3,
        ping_grace: 2,
        ..LifecyclePolicy::default()
    });
    let (mut silent, server_end) = loopback_pair();
    let conn = fe.connect(Box::new(server_end));

    for _ in 0..10 {
        fe.pump(&mut led);
    }
    assert!(fe.conn_closed(conn), "idle connection evicted");
    let fstats = fe.frontend_stats();
    assert_eq!(fstats.pings_sent, 1);
    assert_eq!(fstats.idle_closed, 1);

    // The silent peer was told why, in order: ping, then goaway.
    let mut rx = FrameBuf::default();
    let mut buf = [0u8; 256];
    loop {
        match silent.recv(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => rx.extend(&buf[..n]),
        }
    }
    let mut frames = Vec::new();
    while let Some(f) = rx.next_frame() {
        frames.push(f.unwrap());
    }
    assert!(matches!(frames[0], Frame::Ping { .. }));
    assert!(matches!(
        frames[1],
        Frame::Goaway {
            reason: GoawayReason::IdleTimeout
        }
    ));
}

/// Strike escalation: every malformed frame is answered with a typed
/// error, and at `max_strikes` the connection is told
/// `Goaway(Misbehavior)` and closed — loud degradation, never a panic or
/// a silent drop.
#[test]
fn malformed_frame_strikes_escalate_to_goaway() {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let srv = StreamingServer::new(
        ShardedServer::new(oracle.query_handle(), 2),
        AdmissionPolicy::builder().build(),
    );
    let mut fe = Frontend::new(srv).with_lifecycle(LifecyclePolicy {
        max_strikes: 2,
        ..LifecyclePolicy::default()
    });
    let (mut abuser, server_end) = loopback_pair();
    let conn = fe.connect(Box::new(server_end));

    // An unknown-kind frame: [len=2][ver=1][kind=99].
    let garbage = [2u8, 0, 0, 0, 1, 99];
    abuser.send(&garbage).unwrap();
    fe.pump(&mut led);
    assert!(!fe.conn_closed(conn), "one strike is tolerated");
    abuser.send(&garbage).unwrap();
    fe.pump(&mut led);
    assert!(fe.conn_closed(conn), "second strike closes");
    let fstats = fe.frontend_stats();
    assert_eq!(fstats.malformed_frames, 2);
    assert_eq!(fstats.strike_closed, 1);

    let mut rx = FrameBuf::default();
    let mut buf = [0u8; 256];
    loop {
        match abuser.recv(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => rx.extend(&buf[..n]),
        }
    }
    let mut frames = Vec::new();
    while let Some(f) = rx.next_frame() {
        frames.push(f.unwrap());
    }
    assert_eq!(
        frames[0],
        Frame::Error {
            ticket: None,
            error: ServeError::MalformedFrame(WireFault::UnknownKind(99)),
        },
        "strike one: typed error, not a drop"
    );
    assert_eq!(frames[1], frames[0], "strike two answered too");
    assert_eq!(
        frames[2],
        Frame::Goaway {
            reason: GoawayReason::Misbehavior
        }
    );
}

/// A transport that can be switched into refusing sends with `Busy`,
/// modelling a reader too slow to drain its socket.
struct SlowReader<T> {
    inner: T,
    busy: Arc<AtomicBool>,
}

impl<T: Transport> Transport for SlowReader<T> {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if self.busy.load(Ordering::Relaxed) {
            return Err(TransportError::Busy);
        }
        self.inner.send(bytes)
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        self.inner.recv(buf)
    }
}

/// Slow-client backpressure: while the transport refuses sends, answer
/// frames queue in the connection's bounded send buffer and the frontend
/// stops ingesting that connection; when the client recovers, every
/// queued frame arrives in order — bounded memory, zero dropped bytes.
#[test]
fn slow_client_backpressures_without_losing_frames() {
    let (g, pri, verts) = oracle_fixture();
    let mut led = Ledger::new(OMEGA);
    let k = led.sqrt_omega();
    let oracle =
        ConnectivityOracle::build(&mut led, &g, &pri, &verts, k, 1, OracleBuildOpts::default());
    let srv = StreamingServer::new(
        ShardedServer::new(oracle.query_handle(), 2),
        AdmissionPolicy::builder().max_batch(8).build(),
    );
    let mut fe = Frontend::new(srv)
        .with_window(8)
        .with_lifecycle(LifecyclePolicy {
            send_buffer: 2,
            ..LifecyclePolicy::default()
        });
    let busy = Arc::new(AtomicBool::new(true));
    let (mut client, server_end) = loopback_pair();
    let conn = fe.connect(Box::new(SlowReader {
        inner: server_end,
        busy: Arc::clone(&busy),
    }));

    // Five requests land while the client cannot absorb answers.
    for u in 0..5u32 {
        client
            .send(&encode_frame(&Frame::Request {
                query: Query::Connected(u, u + 1),
            }))
            .unwrap();
    }
    for _ in 0..4 {
        fe.pump(&mut led);
    }
    let fstats = fe.frontend_stats();
    assert!(
        fstats.backpressure_skips > 0,
        "the full send queue stopped ingest"
    );
    assert!(!fe.conn_closed(conn), "Busy is not a failure");

    // A sixth request sits unread in the transport until the queue
    // drains — submitted now, served after recovery.
    client
        .send(&encode_frame(&Frame::Request {
            query: Query::Connected(5, 6),
        }))
        .unwrap();
    busy.store(false, Ordering::Relaxed);
    fe.drain(&mut led);

    let mut rx = FrameBuf::default();
    let mut buf = [0u8; 512];
    loop {
        match client.recv(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => rx.extend(&buf[..n]),
        }
    }
    let mut tickets = Vec::new();
    while let Some(f) = rx.next_frame() {
        match f.unwrap() {
            Frame::Answer { ticket, .. } => tickets.push(ticket),
            other => panic!("expected answers only, got {other:?}"),
        }
    }
    assert_eq!(tickets, vec![0, 1, 2, 3, 4, 5], "in order, none dropped");
    assert_eq!(fe.frontend_stats().send_failures, 0);
}
